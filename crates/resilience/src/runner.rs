//! Resilient execution of fallible work items: bounded retry with
//! exponential backoff, optional per-attempt timeouts (attempts run on a
//! helper thread), and quarantine of items that keep failing.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Retry/backoff/timeout configuration for one class of work.
///
/// The sleep before attempt `n > 1` is the capped exponential
/// `min(base_backoff · 2^(n-2), max_backoff)` scaled by a deterministic
/// jitter factor drawn from `(jitter_seed, n)`: with `jitter = j`, the
/// factor lies in `[1 - j, 1)`. Jitter decorrelates retry storms when many
/// workers hit the same transient fault, while staying a pure function of
/// the seed so any schedule can be replayed exactly.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Base of the exponential backoff curve.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep (before jitter scaling).
    pub max_backoff: Duration,
    /// Fraction of each backoff randomized, clamped to `0.0..=1.0`.
    /// `0.0` reproduces the pure capped exponential.
    pub jitter: f64,
    /// Seed of the jitter stream; the whole schedule is a pure function
    /// of `(jitter_seed, attempt)`.
    pub jitter_seed: u64,
    /// Wall-clock budget per attempt; `None` waits indefinitely.
    pub timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: 0.5,
            jitter_seed: 0,
            timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that tries exactly once with no timeout.
    pub fn once() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            jitter_seed: 0,
            timeout: None,
        }
    }

    /// The same policy with its jitter stream re-seeded (e.g. per job, so
    /// concurrent retriers of one shared policy decorrelate).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The sleep inserted before attempt `attempt` (1-based; zero before
    /// the first attempt). Deterministic: equal `(policy, attempt)` pairs
    /// always produce equal sleeps.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 2).min(16);
        let capped = (self.base_backoff * factor).min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 || capped.is_zero() {
            return capped;
        }
        // splitmix64 of (seed, attempt): a uniform draw in [0, 1).
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - jitter + jitter * unit;
        Duration::from_nanos((capped.as_nanos() as f64 * scale) as u64)
    }

    /// The full backoff schedule for this policy's attempt budget (the
    /// sleep before each attempt, first entry always zero).
    pub fn backoff_schedule(&self) -> Vec<Duration> {
        (1..=self.max_attempts.max(1))
            .map(|a| self.backoff_before(a))
            .collect()
    }
}

/// Terminal result of running one work item under a policy.
#[derive(Debug)]
pub enum RunOutcome<T> {
    /// The item succeeded (possibly after retries).
    Ok {
        /// The successful value.
        value: T,
        /// Attempts consumed, including the successful one.
        attempts: u32,
    },
    /// Every attempt returned an error; the last message is kept.
    Failed {
        /// Attempts consumed.
        attempts: u32,
        /// Display of the final error.
        error: String,
    },
    /// Every attempt either timed out or died; at least one timed out.
    TimedOut {
        /// Attempts consumed.
        attempts: u32,
    },
    /// An attempt panicked; the panic was contained.
    Panicked {
        /// Attempts consumed.
        attempts: u32,
        /// Best-effort panic payload.
        message: String,
    },
    /// The item was already quarantined and was not run.
    Quarantined,
}

impl<T> RunOutcome<T> {
    /// True when the item produced a value.
    pub fn is_ok(&self) -> bool {
        matches!(self, RunOutcome::Ok { .. })
    }

    /// Extracts the value, if any.
    pub fn into_value(self) -> Option<T> {
        match self {
            RunOutcome::Ok { value, .. } => Some(value),
            _ => None,
        }
    }
}

/// Tracks persistently failing items so a sweep stops burning time on
/// them. An item enters quarantine once its recorded failures reach the
/// threshold.
#[derive(Debug, Clone)]
pub struct Quarantine {
    threshold: u32,
    failures: HashMap<String, u32>,
}

impl Quarantine {
    /// Quarantines an item after `threshold` recorded failures
    /// (minimum 1).
    pub fn new(threshold: u32) -> Self {
        Quarantine {
            threshold: threshold.max(1),
            failures: HashMap::new(),
        }
    }

    /// Whether `label` is currently quarantined.
    pub fn contains(&self, label: &str) -> bool {
        self.failures
            .get(label)
            .is_some_and(|&n| n >= self.threshold)
    }

    /// Records a terminal failure for `label`; returns true if this
    /// pushed it into quarantine.
    pub fn record_failure(&mut self, label: &str) -> bool {
        let n = self.failures.entry(label.to_string()).or_insert(0);
        *n += 1;
        *n >= self.threshold
    }

    /// Clears any record for `label` (after a success).
    pub fn record_success(&mut self, label: &str) {
        self.failures.remove(label);
    }

    /// Labels currently in quarantine, sorted for stable reporting.
    pub fn quarantined(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .failures
            .iter()
            .filter(|(_, &n)| n >= self.threshold)
            .map(|(k, _)| k.clone())
            .collect();
        out.sort();
        out
    }
}

/// Runs `work` under `policy`, containing panics and honoring
/// `quarantine`.
///
/// Each attempt executes on a helper thread so a per-attempt timeout can
/// be enforced; a timed-out attempt's thread is detached and its late
/// result discarded. Outcomes update the quarantine record for `label`.
pub fn run_with_retry<T, E, F>(
    policy: &RetryPolicy,
    label: &str,
    quarantine: &mut Quarantine,
    work: F,
) -> RunOutcome<T>
where
    T: Send + 'static,
    E: std::fmt::Display + Send + 'static,
    F: Fn() -> Result<T, E> + Send + Sync + 'static,
{
    if quarantine.contains(label) {
        return RunOutcome::Quarantined;
    }
    let work = Arc::new(work);
    let max_attempts = policy.max_attempts.max(1);
    let mut saw_timeout = false;
    let mut last_error = String::new();
    let mut last_panic: Option<String> = None;

    for attempt in 1..=max_attempts {
        thread::sleep(policy.backoff_before(attempt));
        match run_attempt(policy.timeout, Arc::clone(&work)) {
            AttemptResult::Ok(value) => {
                quarantine.record_success(label);
                return RunOutcome::Ok { value, attempts: attempt };
            }
            AttemptResult::Err(message) => {
                last_error = message;
                last_panic = None;
            }
            AttemptResult::Panicked(message) => last_panic = Some(message),
            AttemptResult::TimedOut => {
                saw_timeout = true;
                last_panic = None;
            }
        }
    }

    quarantine.record_failure(label);
    if let Some(message) = last_panic {
        RunOutcome::Panicked {
            attempts: max_attempts,
            message,
        }
    } else if saw_timeout && last_error.is_empty() {
        RunOutcome::TimedOut {
            attempts: max_attempts,
        }
    } else {
        RunOutcome::Failed {
            attempts: max_attempts,
            error: last_error,
        }
    }
}

enum AttemptResult<T> {
    Ok(T),
    Err(String),
    Panicked(String),
    TimedOut,
}

fn run_attempt<T, E, F>(timeout: Option<Duration>, work: Arc<F>) -> AttemptResult<T>
where
    T: Send + 'static,
    E: std::fmt::Display + Send + 'static,
    F: Fn() -> Result<T, E> + Send + Sync + 'static,
{
    let run = move || match panic::catch_unwind(AssertUnwindSafe(|| work())) {
        Ok(Ok(value)) => AttemptResult::Ok(value),
        Ok(Err(e)) => AttemptResult::Err(e.to_string()),
        Err(payload) => AttemptResult::Panicked(panic_message(payload.as_ref())),
    };
    match timeout {
        None => run(),
        Some(budget) => {
            let (tx, rx) = mpsc::channel();
            thread::spawn(move || {
                // The receiver may be gone after a timeout; that is fine.
                let _ = tx.send(run());
            });
            match rx.recv_timeout(budget) {
                Ok(result) => result,
                Err(_) => AttemptResult::TimedOut,
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast_policy(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            jitter: 0.5,
            jitter_seed: 7,
            timeout: None,
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_under_a_fixed_seed() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: 0.5,
            jitter_seed: 42,
            timeout: None,
        };
        assert_eq!(policy.backoff_schedule(), policy.backoff_schedule());
        assert_eq!(
            policy.backoff_schedule(),
            policy.clone().with_seed(42).backoff_schedule()
        );
        // A different seed produces a different (but equally fixed) schedule.
        let other = policy.clone().with_seed(43).backoff_schedule();
        assert_ne!(policy.backoff_schedule(), other);
    }

    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter: 0.0, // pure curve: no jitter
            jitter_seed: 0,
            timeout: None,
        };
        let schedule = policy.backoff_schedule();
        assert_eq!(schedule[0], Duration::ZERO);
        assert_eq!(schedule[1], Duration::from_millis(10));
        assert_eq!(schedule[2], Duration::from_millis(20));
        assert_eq!(schedule[3], Duration::from_millis(40));
        assert_eq!(schedule[4], Duration::from_millis(80));
        // Capped from attempt 6 on.
        assert!(schedule[5..].iter().all(|&d| d == Duration::from_millis(100)));
    }

    #[test]
    fn jitter_stays_inside_its_band() {
        let jitter = 0.5;
        for seed in 0..64u64 {
            let policy = RetryPolicy {
                max_attempts: 8,
                base_backoff: Duration::from_millis(16),
                max_backoff: Duration::from_secs(1),
                jitter,
                jitter_seed: seed,
                timeout: None,
            };
            for attempt in 2..=8u32 {
                let pure = (policy.base_backoff * (1u32 << (attempt - 2)))
                    .min(policy.max_backoff);
                let jittered = policy.backoff_before(attempt);
                assert!(jittered < pure, "jitter must shorten, not extend");
                assert!(
                    jittered.as_secs_f64() >= pure.as_secs_f64() * (1.0 - jitter) - 1e-9,
                    "seed {seed} attempt {attempt}: below the jitter band"
                );
            }
        }
    }

    #[test]
    fn out_of_range_jitter_is_clamped_not_panicking() {
        let mut policy = fast_policy(3);
        policy.jitter = 7.5;
        let d = policy.backoff_before(2);
        assert!(d <= policy.max_backoff);
        policy.jitter = -1.0;
        assert_eq!(policy.backoff_before(2), Duration::from_millis(1));
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let mut q = Quarantine::new(2);
        let outcome = run_with_retry(&fast_policy(5), "cell", &mut q, move || {
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("flaky")
            } else {
                Ok(42u32)
            }
        });
        match outcome {
            RunOutcome::Ok { value, attempts } => {
                assert_eq!(value, 42);
                assert_eq!(attempts, 3);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(!q.contains("cell"));
    }

    #[test]
    fn persistent_failure_lands_in_quarantine() {
        let mut q = Quarantine::new(2);
        for round in 0..2 {
            let outcome: RunOutcome<u32> =
                run_with_retry(&fast_policy(2), "bad", &mut q, || Err("always"));
            match outcome {
                RunOutcome::Failed { attempts, error } => {
                    assert_eq!(attempts, 2);
                    assert_eq!(error, "always");
                }
                other => panic!("round {round}: unexpected outcome {other:?}"),
            }
        }
        assert!(q.contains("bad"));
        assert_eq!(q.quarantined(), vec!["bad".to_string()]);
        let outcome: RunOutcome<u32> =
            run_with_retry(&fast_policy(2), "bad", &mut q, || Err("always"));
        assert!(matches!(outcome, RunOutcome::Quarantined));
    }

    #[test]
    fn panics_are_contained() {
        let mut q = Quarantine::new(1);
        let outcome: RunOutcome<u32> =
            run_with_retry(&fast_policy(2), "boom", &mut q, || -> Result<u32, String> {
                panic!("kaboom {}", 7)
            });
        match outcome {
            RunOutcome::Panicked { message, .. } => assert!(message.contains("kaboom")),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(q.contains("boom"));
    }

    #[test]
    fn slow_attempts_time_out() {
        let mut policy = fast_policy(1);
        policy.timeout = Some(Duration::from_millis(20));
        let mut q = Quarantine::new(1);
        let outcome: RunOutcome<u32> =
            run_with_retry(&policy, "slow", &mut q, || -> Result<u32, String> {
                thread::sleep(Duration::from_secs(5));
                Ok(1)
            });
        assert!(matches!(outcome, RunOutcome::TimedOut { attempts: 1 }));
    }
}
