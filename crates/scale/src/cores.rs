//! The simulated multicore: thread-speed model and LPT scheduling.
//!
//! This container exposes a single hardware thread, so the paper's
//! multi-threaded scaling runs cannot be reproduced natively; instead the
//! scheduler below executes a stage's measured [`TaskGraph`] on `n` virtual
//! threads with per-thread throughput derived from the target CPU's core
//! topology (P-cores, E-cores, SMT siblings), plus spawn and barrier
//! overheads. DESIGN.md §2 documents the substitution.

use serde::Serialize;

use crate::graph::{Segment, TaskGraph};

/// A virtual multicore machine.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimCores {
    /// Physical performance cores (relative throughput 1.0 each).
    pub p_cores: usize,
    /// Efficiency cores.
    pub e_cores: usize,
    /// Total schedulable hardware threads (with SMT).
    pub smt_threads: usize,
    /// Relative throughput of an E-core (Raptor Lake E ≈ 0.55 of P).
    pub e_core_throughput: f64,
    /// *Additional* throughput contributed by the second SMT sibling on an
    /// already-busy core (typically ~0.3).
    pub smt_throughput: f64,
    /// Work units charged per thread participating in a parallel section
    /// (spawn/wake cost).
    pub spawn_overhead: f64,
    /// Work units charged per parallel section for the closing barrier,
    /// multiplied by the number of participating threads.
    pub barrier_overhead: f64,
}

impl SimCores {
    /// A machine matching one of the paper CPUs' core configurations.
    pub fn new(p_cores: usize, e_cores: usize, smt_threads: usize) -> Self {
        SimCores {
            p_cores,
            e_cores,
            smt_threads,
            e_core_throughput: 0.55,
            smt_throughput: 0.30,
            spawn_overhead: 1500.0,
            barrier_overhead: 400.0,
        }
    }

    /// The i9-13900K topology used for the paper's Figures 6-7.
    pub fn i9_13900k() -> Self {
        SimCores::new(8, 16, 32)
    }

    /// Relative throughputs of the first `n` scheduled threads, fastest
    /// first: P-cores, then E-cores, then SMT siblings.
    pub fn thread_speeds(&self, n: usize) -> Vec<f64> {
        let n = n.max(1).min(self.smt_threads.max(1));
        let mut speeds = Vec::with_capacity(n);
        for i in 0..n {
            let s = if i < self.p_cores {
                1.0
            } else if i < self.p_cores + self.e_cores {
                self.e_core_throughput
            } else {
                self.smt_throughput
            };
            speeds.push(s);
        }
        speeds
    }

    /// Executes `graph` on `threads` virtual threads and returns the
    /// simulated completion time in work units.
    ///
    /// Serial segments run on the fastest thread; parallel loops are
    /// scheduled longest-processing-time-first onto the thread pool,
    /// charging spawn and barrier overheads, and complete at the makespan.
    pub fn simulate(&self, graph: &TaskGraph, threads: usize) -> f64 {
        let speeds = self.thread_speeds(threads);
        let mut time = 0.0;
        for segment in graph.segments() {
            match segment {
                Segment::Serial(w) => time += w,
                Segment::ParallelFor { tasks } => {
                    if tasks.is_empty() {
                        continue;
                    }
                    let used = speeds.len().min(tasks.len());
                    // LPT: sort descending, assign each task to the worker
                    // that would finish it earliest.
                    let mut sorted: Vec<f64> = tasks.clone();
                    sorted.sort_by(|a, b| b.total_cmp(a));
                    let mut finish = vec![0.0f64; used];
                    for t in sorted {
                        let (best, _) = finish
                            .iter()
                            .enumerate()
                            .map(|(i, &f)| (i, f + t / speeds[i]))
                            .min_by(|a, b| a.1.total_cmp(&b.1))
                            .expect("at least one worker");
                        finish[best] += t / speeds[best];
                    }
                    let makespan = finish.iter().copied().fold(0.0f64, f64::max);
                    time += makespan
                        + self.spawn_overhead * used as f64
                        + self.barrier_overhead * used as f64;
                }
            }
        }
        time
    }

    /// Strong-scaling speedup curve: `(n, t₁/tₙ)` for each thread count.
    pub fn strong_scaling(&self, graph: &TaskGraph, thread_counts: &[usize]) -> Vec<(usize, f64)> {
        let t1 = self.simulate(graph, 1);
        thread_counts
            .iter()
            .map(|&n| (n, t1 / self.simulate(graph, n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat() -> SimCores {
        // Homogeneous 8-thread machine with no overheads, for exact checks.
        SimCores {
            p_cores: 8,
            e_cores: 0,
            smt_threads: 8,
            e_core_throughput: 1.0,
            smt_throughput: 1.0,
            spawn_overhead: 0.0,
            barrier_overhead: 0.0,
        }
    }

    #[test]
    fn serial_work_ignores_thread_count() {
        let g = TaskGraph::new().serial(1000.0);
        let m = flat();
        assert_eq!(m.simulate(&g, 1), 1000.0);
        assert_eq!(m.simulate(&g, 8), 1000.0);
    }

    #[test]
    fn embarrassingly_parallel_scales_linearly() {
        let g = TaskGraph::new().parallel_uniform(800, 10.0);
        let m = flat();
        let t1 = m.simulate(&g, 1);
        let t8 = m.simulate(&g, 8);
        assert_eq!(t1, 8000.0);
        assert_eq!(t8, 1000.0);
    }

    #[test]
    fn amdahl_limit_shows_in_mixed_graph() {
        // 50% serial work: speedup can never reach 2× no matter the threads.
        let g = TaskGraph::new().serial(4000.0).parallel_uniform(400, 10.0);
        let m = flat();
        let curve = m.strong_scaling(&g, &[1, 2, 4, 8]);
        assert!(curve[3].1 < 2.0);
        assert!(curve[1].1 > curve[0].1);
        assert!((curve[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_handles_skewed_tasks() {
        // One huge task dominates the makespan.
        let g = TaskGraph::new().parallel(vec![1000.0, 1.0, 1.0, 1.0]);
        let m = flat();
        assert_eq!(m.simulate(&g, 4), 1000.0);
    }

    #[test]
    fn smt_and_ecores_give_diminishing_returns() {
        let m = SimCores::i9_13900k();
        let speeds = m.thread_speeds(32);
        assert_eq!(speeds.len(), 32);
        assert_eq!(speeds[0], 1.0);
        assert_eq!(speeds[7], 1.0);
        assert_eq!(speeds[8], 0.55);
        assert_eq!(speeds[23], 0.55);
        assert_eq!(speeds[24], 0.30);
        // Requesting more threads than the machine has clamps.
        assert_eq!(m.thread_speeds(64).len(), 32);
    }

    #[test]
    fn overheads_can_make_small_tasks_slower_with_more_threads() {
        // Tiny parallel section: spawn costs dominate (the paper observes
        // this for compile at 2^10 with 24 threads).
        let m = SimCores::i9_13900k();
        let g = TaskGraph::new().parallel_uniform(32, 100.0);
        let t2 = m.simulate(&g, 2);
        let t24 = m.simulate(&g, 24);
        assert!(t24 > t2, "thread overhead dominates tiny workloads");
    }
}
