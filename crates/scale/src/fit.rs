//! Least-squares fits of scaling curves to Amdahl's and Gustafson's laws
//! (paper Table VI: serial/parallel percentages per stage).

use serde::Serialize;

/// A fitted serial/parallel split, as percentages summing to 100.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ParallelismFit {
    /// Serial share of the work, percent.
    pub serial_pct: f64,
    /// Parallel share of the work, percent.
    pub parallel_pct: f64,
}

fn linear_regression(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate regression inputs");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

fn normalize(serial: f64, parallel: f64) -> ParallelismFit {
    let s = serial.max(0.0);
    let p = parallel.max(0.0);
    let total = s + p;
    if total <= 0.0 {
        return ParallelismFit {
            serial_pct: 100.0,
            parallel_pct: 0.0,
        };
    }
    ParallelismFit {
        serial_pct: 100.0 * s / total,
        parallel_pct: 100.0 * p / total,
    }
}

/// Fits strong-scaling measurements `(n, speedup)` to Amdahl's law
/// `1/speedup = s + p/n` by regressing the reciprocal speedup against `1/n`.
///
/// # Panics
///
/// Panics on fewer than two points or a degenerate point set.
pub fn amdahl(points: &[(usize, f64)]) -> ParallelismFit {
    let xs: Vec<f64> = points.iter().map(|&(n, _)| 1.0 / n as f64).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, sp)| 1.0 / sp).collect();
    let (p, s) = linear_regression(&xs, &ys);
    normalize(s, p)
}

/// Fits weak-scaling measurements `(n, speedup)` to Gustafson's law
/// `speedup = s + p·n` by direct linear regression.
///
/// # Panics
///
/// Panics on fewer than two points or a degenerate point set.
pub fn gustafson(points: &[(usize, f64)]) -> ParallelismFit {
    let xs: Vec<f64> = points.iter().map(|&(n, _)| n as f64).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, sp)| sp).collect();
    let (p, s) = linear_regression(&xs, &ys);
    normalize(s, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amdahl_speedup(s: f64, n: usize) -> f64 {
        1.0 / (s + (1.0 - s) / n as f64)
    }

    #[test]
    fn amdahl_recovers_known_serial_fraction() {
        for s in [0.1, 0.3, 0.7] {
            let points: Vec<(usize, f64)> =
                [1, 2, 4, 8, 16, 32].iter().map(|&n| (n, amdahl_speedup(s, n))).collect();
            let fit = amdahl(&points);
            assert!(
                (fit.serial_pct - s * 100.0).abs() < 1.0,
                "s = {s}: fitted {}",
                fit.serial_pct
            );
            assert!((fit.serial_pct + fit.parallel_pct - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gustafson_recovers_known_split() {
        // Speedup_WS(n) = s + p·n with s = 0.25, p = 0.75.
        let points: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&n| (n, 0.25 + 0.75 * n as f64))
            .collect();
        let fit = gustafson(&points);
        assert!((fit.serial_pct - 25.0).abs() < 1e-6);
        assert!((fit.parallel_pct - 75.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_stays_close() {
        let points: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let noise = 1.0 + if i % 2 == 0 { 0.02 } else { -0.02 };
                (n, amdahl_speedup(0.3, n) * noise)
            })
            .collect();
        let fit = amdahl(&points);
        assert!((fit.serial_pct - 30.0).abs() < 5.0, "{}", fit.serial_pct);
    }

    #[test]
    fn perfectly_serial_curve() {
        let points: Vec<(usize, f64)> =
            [1usize, 2, 4, 8].iter().map(|&n| (n, 1.0)).collect();
        let fit = amdahl(&points);
        assert!(fit.serial_pct > 99.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        let _ = amdahl(&[(1, 1.0)]);
    }
}
