//! Task graphs: the serial/parallel structure of a protocol stage.

use serde::Serialize;

/// One phase of a stage's execution.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Segment {
    /// Work that must run on a single thread (in abstract work units,
    /// typically micro-ops measured from a trace).
    Serial(f64),
    /// A parallel loop of independent tasks with the given costs.
    ParallelFor {
        /// Per-task work units.
        tasks: Vec<f64>,
    },
}

/// An alternating sequence of serial segments and parallel loops describing
/// how a protocol stage *could* execute on many threads.
///
/// The core crate derives one `TaskGraph` per stage from the stage's actual
/// decomposition (MSM chunks, NTT passes, per-gate witness evaluation…)
/// with costs measured by the tracer, so the scaling analysis reflects the
/// real algorithmic structure rather than an assumed parallel fraction.
///
/// # Examples
///
/// ```
/// use zkperf_scale::TaskGraph;
/// let g = TaskGraph::new()
///     .serial(100.0)
///     .parallel_uniform(64, 10.0)
///     .serial(50.0);
/// assert_eq!(g.total_work(), 100.0 + 640.0 + 50.0);
/// assert!(g.parallel_fraction() > 0.8);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct TaskGraph {
    segments: Vec<Segment>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Appends a serial segment of `work` units.
    pub fn serial(mut self, work: f64) -> Self {
        assert!(work >= 0.0, "work must be non-negative");
        self.segments.push(Segment::Serial(work));
        self
    }

    /// Appends a parallel loop of `n` tasks of `each` units.
    pub fn parallel_uniform(self, n: usize, each: f64) -> Self {
        self.parallel(vec![each; n])
    }

    /// Appends a parallel loop with explicit per-task costs.
    pub fn parallel(mut self, tasks: Vec<f64>) -> Self {
        assert!(
            tasks.iter().all(|&t| t >= 0.0),
            "task costs must be non-negative"
        );
        self.segments.push(Segment::ParallelFor { tasks });
        self
    }

    /// The segments in execution order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total work across all segments.
    pub fn total_work(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Serial(w) => *w,
                Segment::ParallelFor { tasks } => tasks.iter().sum(),
            })
            .sum()
    }

    /// Fraction of the total work that sits in parallel loops.
    pub fn parallel_fraction(&self) -> f64 {
        let total = self.total_work();
        if total == 0.0 {
            return 0.0;
        }
        let par: f64 = self
            .segments
            .iter()
            .map(|s| match s {
                Segment::Serial(_) => 0.0,
                Segment::ParallelFor { tasks } => tasks.iter().sum(),
            })
            .sum();
        par / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let g = TaskGraph::new().serial(30.0).parallel(vec![10.0, 20.0, 40.0]);
        assert_eq!(g.total_work(), 100.0);
        assert_eq!(g.parallel_fraction(), 0.7);
        assert_eq!(g.segments().len(), 2);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = TaskGraph::new();
        assert_eq!(g.total_work(), 0.0);
        assert_eq!(g.parallel_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_work() {
        let _ = TaskGraph::new().serial(-1.0);
    }
}
