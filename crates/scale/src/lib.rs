#![warn(missing_docs)]

//! Scalability analysis machinery: measured task graphs, a simulated
//! multicore scheduler, and Amdahl/Gustafson least-squares fits.
//!
//! Reproduces the paper's strong-scaling (Fig. 6), weak-scaling (Fig. 7)
//! and parallelism-quantification (Table VI) experiments on a
//! single-hardware-thread host by simulating virtual thread pools with the
//! target CPUs' core topologies (see DESIGN.md §2 for the substitution
//! rationale).
//!
//! # Examples
//!
//! ```
//! use zkperf_scale::{fit, SimCores, TaskGraph};
//!
//! let stage = TaskGraph::new().serial(10_000.0).parallel_uniform(1024, 100.0);
//! let machine = SimCores::i9_13900k();
//! let curve = machine.strong_scaling(&stage, &[1, 2, 4, 8, 16, 32]);
//! let split = fit::amdahl(&curve);
//! assert!(split.parallel_pct > 50.0);
//! ```

mod cores;
pub mod fit;
mod graph;

pub use cores::SimCores;
pub use fit::ParallelismFit;
pub use graph::{Segment, TaskGraph};
