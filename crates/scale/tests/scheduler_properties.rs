//! Property-based tests of the simulated-multicore scheduler.

use proptest::prelude::*;
use zkperf_scale::{fit, SimCores, TaskGraph};

fn no_overhead_flat(threads: usize) -> SimCores {
    SimCores {
        p_cores: threads,
        e_cores: 0,
        smt_threads: threads,
        e_core_throughput: 1.0,
        smt_throughput: 1.0,
        spawn_overhead: 0.0,
        barrier_overhead: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn more_threads_never_hurt_without_overheads(
        tasks in proptest::collection::vec(1.0f64..1000.0, 1..64),
        serial in 0.0f64..5000.0,
    ) {
        let g = TaskGraph::new().serial(serial).parallel(tasks);
        let m = no_overhead_flat(64);
        let mut last = f64::INFINITY;
        for n in [1usize, 2, 4, 8, 16, 32] {
            let t = m.simulate(&g, n);
            prop_assert!(t <= last + 1e-9, "t({n}) = {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn makespan_bounds_hold(
        tasks in proptest::collection::vec(1.0f64..1000.0, 1..64),
        threads in 1usize..16,
    ) {
        // total/threads ≤ makespan ≤ total, and ≥ the largest task.
        let g = TaskGraph::new().parallel(tasks.clone());
        let m = no_overhead_flat(16);
        let t = m.simulate(&g, threads);
        let total: f64 = tasks.iter().sum();
        let largest = tasks.iter().cloned().fold(0.0, f64::max);
        prop_assert!(t <= total + 1e-9);
        prop_assert!(t + 1e-9 >= total / threads as f64);
        prop_assert!(t + 1e-9 >= largest);
    }

    #[test]
    fn amdahl_fit_of_simulated_curve_recovers_structure(
        serial_share in 0.05f64..0.95,
    ) {
        // Build a graph with a known serial share, simulate, fit, compare.
        let total = 1_000_000.0;
        let g = TaskGraph::new()
            .serial(total * serial_share)
            .parallel_uniform(1024, total * (1.0 - serial_share) / 1024.0);
        let m = no_overhead_flat(64);
        let curve = m.strong_scaling(&g, &[1, 2, 4, 8, 16, 32]);
        let fitted = fit::amdahl(&curve);
        prop_assert!(
            (fitted.serial_pct / 100.0 - serial_share).abs() < 0.08,
            "expected {serial_share}, fitted {}",
            fitted.serial_pct / 100.0
        );
    }
}
