//! Open-loop load generator for zkperf-serve.
//!
//! Replays a seeded mixed trace (circuit sizes, priorities, deadlines,
//! prove/verify mix) through a [`Server`], optionally under
//! `ZKPERF_CHAOS` fault injection, and prints the per-stage
//! p50/p99/p99.9 table plus cost-per-proof.
//!
//! Exit status is non-zero on any accounting violation: an accepted job
//! without a typed outcome, outcome/counter disagreement, or a served
//! proof whose bytes differ from the serial reference path.
//!
//! ```text
//! loadgen [--jobs N] [--seed S] [--max-depth D] [--verify-only-depth V]
//!         [--deadline-ms MS] [--cache-dir PATH] [--keep-cache]
//! ```

use std::process::ExitCode;
use std::time::Duration;

use rand::{Rng, SeedableRng};

use zkperf_core::Groth16Backend;
use zkperf_ec::Bn254;
use zkperf_resilience::chaos_mode;
use zkperf_serve::{
    prove_serial, ArtifactCache, CircuitSpec, JobKind, JobOutcome, JobSpec, Priority,
    Server, ServerConfig,
};

struct Args {
    jobs: usize,
    seed: u64,
    max_depth: usize,
    verify_only_depth: usize,
    deadline_ms: u64,
    cache_dir: Option<String>,
    keep_cache: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: 40,
        seed: 42,
        max_depth: 16,
        verify_only_depth: usize::MAX,
        deadline_ms: 30_000,
        cache_dir: None,
        keep_cache: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--max-depth" => {
                args.max_depth =
                    value("--max-depth")?.parse().map_err(|e| format!("--max-depth: {e}"))?
            }
            "--verify-only-depth" => {
                args.verify_only_depth = value("--verify-only-depth")?
                    .parse()
                    .map_err(|e| format!("--verify-only-depth: {e}"))?
            }
            "--deadline-ms" => {
                args.deadline_ms =
                    value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--keep-cache" => args.keep_cache = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// One synthetic submission drawn from the trace RNG.
fn draw_job(rng: &mut rand::rngs::StdRng, deadline_ms: u64, proofs: &[(CircuitSpec, Vec<u8>)]) -> JobSpec {
    // Small/medium/large shape mix; sizes stay modest so the smoke tier
    // finishes quickly while still exercising multi-size cache reuse.
    let constraints = [16usize, 32, 64, 128][rng.gen_range(0..4) as usize];
    let x = rng.gen_range(2..12);
    let priority = match rng.gen_range(0..10) {
        0..=1 => Priority::Low,
        2..=7 => Priority::Normal,
        _ => Priority::High,
    };
    // Most jobs get a comfortable budget; a sliver get an impossible one
    // so the deadline path stays exercised.
    let deadline = if rng.gen_bool(0.05) {
        Some(Duration::from_nanos(1))
    } else {
        Some(Duration::from_millis(deadline_ms))
    };
    // A quarter of traffic re-verifies a previously served proof, when
    // one exists. Re-verification is latency-tolerant, so most of it runs
    // deadline-free — which also makes it eligible for the server's
    // batched pairing check; a slice keeps a deadline so that interaction
    // stays exercised too.
    let kind = if !proofs.is_empty() && rng.gen_bool(0.25) {
        let (spec, proof) = &proofs[rng.gen_range(0..proofs.len() as u64) as usize];
        return JobSpec {
            circuit: spec.clone(),
            kind: JobKind::Verify { proof: proof.clone() },
            priority,
            deadline: if rng.gen_bool(0.2) { deadline } else { None },
        };
    } else {
        JobKind::Prove
    };
    JobSpec {
        circuit: CircuitSpec::exponentiate(constraints, x),
        kind,
        priority,
        deadline,
    }
}

fn run() -> Result<Vec<String>, String> {
    let args = parse_args()?;
    let chaos = chaos_mode();
    let cache_dir = args.cache_dir.clone().unwrap_or_else(|| {
        format!(
            "{}/zkperf-loadgen-{}",
            std::env::temp_dir().display(),
            std::process::id()
        )
    });

    let cfg = ServerConfig {
        chaos,
        verify_only_depth: args.verify_only_depth,
        ..ServerConfig::default()
    };
    let mut cfg = cfg;
    cfg.admission.max_depth = args.max_depth;
    let mut server: Server<Groth16Backend<Bn254>> =
        Server::open(format!("{cache_dir}/server"), cfg).map_err(|e| e.to_string())?;

    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
    let mut served_proofs: Vec<(CircuitSpec, Vec<u8>)> = Vec::new();
    let mut accepted: Vec<(u64, JobSpec)> = Vec::new();
    let mut rejected = 0usize;

    println!(
        "loadgen: {} jobs, seed {}, chaos {:?}, queue depth {}",
        args.jobs, args.seed, chaos, args.max_depth
    );

    for _ in 0..args.jobs {
        let spec = draw_job(&mut rng, args.deadline_ms, &served_proofs);
        let (id, admitted) = server.submit(spec.clone());
        match admitted {
            Ok(()) => accepted.push((id, spec)),
            Err(_) => rejected += 1,
        }
        // Open loop with bursts: drain a little between arrivals so the
        // queue breathes but can still back up.
        let steps = rng.gen_range(0..3);
        for _ in 0..steps {
            if server.step() {
                harvest_proofs(&server, &accepted, &mut served_proofs);
            }
        }
    }
    server.run_until_drained();
    harvest_proofs(&server, &accepted, &mut served_proofs);

    println!("{}", server.report());
    let stats = server.cache_stats();
    println!(
        "cache: {} mem hits, {} disk hits, {} builds, {} corrupt evictions",
        stats.mem_hits, stats.disk_hits, stats.builds, stats.corrupt_evictions
    );
    println!("admission: {} accepted, {} rejected at submit", accepted.len(), rejected);

    // --- audits ---------------------------------------------------------
    let mut errors = server.accounting_errors();

    // Every accepted prove job that was served must byte-match the
    // serial reference pipeline.
    let mut serial_cache: ArtifactCache<Groth16Backend<Bn254>> =
        ArtifactCache::open(format!("{cache_dir}/serial")).map_err(|e| e.to_string())?;
    let mut compared = 0usize;
    for (id, spec) in &accepted {
        if !matches!(spec.kind, JobKind::Prove) {
            continue;
        }
        if let Some(JobOutcome::Served { proof, .. }) = server.outcome(*id) {
            let reference =
                prove_serial(&mut serial_cache, &spec.circuit).map_err(|e| e.to_string())?;
            if proof != &reference {
                errors.push(format!("job {id}: served proof differs from serial path"));
            }
            compared += 1;
        }
    }
    println!("determinism: {compared} served proofs byte-checked against serial path");

    if !args.keep_cache {
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
    Ok(errors)
}

fn harvest_proofs(
    server: &Server<Groth16Backend<Bn254>>,
    accepted: &[(u64, JobSpec)],
    out: &mut Vec<(CircuitSpec, Vec<u8>)>,
) {
    for (id, spec) in accepted {
        if !matches!(spec.kind, JobKind::Prove) {
            continue;
        }
        if out.iter().any(|(s, _)| s == &spec.circuit) {
            continue;
        }
        if let Some(JobOutcome::Served { proof, .. }) = server.outcome(*id) {
            if !proof.is_empty() {
                out.push((spec.circuit.clone(), proof.clone()));
            }
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(errors) if errors.is_empty() => {
            println!("loadgen: OK");
            ExitCode::SUCCESS
        }
        Ok(errors) => {
            for e in &errors {
                eprintln!("loadgen: accounting error: {e}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
