//! A per-circuit circuit breaker over submission ticks.
//!
//! Failure counting reuses [`zkperf_resilience::Quarantine`]; this module
//! adds the Closed → Open → HalfOpen lifecycle on top. Time is measured
//! in *submission ticks* (one per [`crate::Server::submit`] call), not
//! wall clock, so breaker behaviour is deterministic under replay.

use std::collections::{HashMap, HashSet};

use zkperf_resilience::Quarantine;

/// What the breaker says about a circuit shape at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed: admit normally.
    Allow,
    /// Half-open: admit exactly one probe; its outcome closes or
    /// re-opens the breaker.
    Probe,
    /// Open: reject until the given tick.
    Reject {
        /// Tick at which the breaker half-opens.
        until_tick: u64,
    },
}

/// Tracks failure history per circuit content key.
#[derive(Debug)]
pub struct CircuitBreaker {
    cooldown_ticks: u64,
    quarantine: Quarantine,
    open_until: HashMap<String, u64>,
    half_open: HashSet<String>,
}

impl CircuitBreaker {
    /// Opens after `threshold` consecutive terminal failures of a shape;
    /// stays open for `cooldown_ticks` submissions.
    pub fn new(threshold: u32, cooldown_ticks: u64) -> CircuitBreaker {
        CircuitBreaker {
            cooldown_ticks: cooldown_ticks.max(1),
            quarantine: Quarantine::new(threshold),
            open_until: HashMap::new(),
            half_open: HashSet::new(),
        }
    }

    /// Admission-time check for `key` at submission tick `tick`.
    pub fn check(&mut self, key: &str, tick: u64) -> BreakerDecision {
        if let Some(&until) = self.open_until.get(key) {
            if tick < until {
                return BreakerDecision::Reject { until_tick: until };
            }
            self.open_until.remove(key);
            self.half_open.insert(key.to_string());
            return BreakerDecision::Probe;
        }
        if self.half_open.contains(key) {
            // A probe is already in flight (or pending); admit it only
            // once — further arrivals wait for the probe's verdict.
            return BreakerDecision::Probe;
        }
        BreakerDecision::Allow
    }

    /// Records a successful completion: closes the breaker and clears the
    /// failure history for `key`.
    pub fn record_success(&mut self, key: &str) {
        self.quarantine.record_success(key);
        self.open_until.remove(key);
        self.half_open.remove(key);
    }

    /// Records a terminal failure at tick `tick`. Returns true when this
    /// opened (or re-opened) the breaker.
    pub fn record_failure(&mut self, key: &str, tick: u64) -> bool {
        let was_half_open = self.half_open.remove(key);
        let tripped = self.quarantine.record_failure(key);
        if tripped || was_half_open {
            self.open_until
                .insert(key.to_string(), tick + self.cooldown_ticks);
            return true;
        }
        false
    }

    /// Keys currently open or half-open, sorted for stable reporting.
    pub fn open_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .open_until
            .keys()
            .chain(self.half_open.iter())
            .cloned()
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_half_opens_after_cooldown() {
        let mut b = CircuitBreaker::new(3, 10);
        assert_eq!(b.check("c", 0), BreakerDecision::Allow);
        assert!(!b.record_failure("c", 0));
        assert!(!b.record_failure("c", 1));
        assert!(b.record_failure("c", 2)); // third strike opens
        assert_eq!(b.check("c", 3), BreakerDecision::Reject { until_tick: 12 });
        assert_eq!(b.check("c", 11), BreakerDecision::Reject { until_tick: 12 });
        assert_eq!(b.check("c", 12), BreakerDecision::Probe);
        // Failed probe re-opens immediately for another full cooldown.
        assert!(b.record_failure("c", 12));
        assert_eq!(b.check("c", 13), BreakerDecision::Reject { until_tick: 22 });
        // Successful probe closes and clears history.
        assert_eq!(b.check("c", 22), BreakerDecision::Probe);
        b.record_success("c");
        assert_eq!(b.check("c", 23), BreakerDecision::Allow);
        assert!(b.open_keys().is_empty());
    }

    #[test]
    fn shapes_fail_independently() {
        let mut b = CircuitBreaker::new(1, 5);
        assert!(b.record_failure("bad", 0));
        assert!(matches!(b.check("bad", 1), BreakerDecision::Reject { .. }));
        assert_eq!(b.check("good", 1), BreakerDecision::Allow);
        assert_eq!(b.open_keys(), vec!["bad".to_string()]);
    }
}
