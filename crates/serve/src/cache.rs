//! A content-addressed artifact cache for compiled circuits and setup
//! keys.
//!
//! Entries are keyed by a hash of the backend label and the circuit
//! source, so identical shapes share one compile + setup across jobs,
//! retries, and server restarts. On disk each entry is a compiled R1CS
//! container (`{key}.r1cs`) plus — for backends that persist key material
//! ([`ProverBackend::save_keys`]) — a key container (`{key}.zkey`), both
//! written atomically; reads that fail integrity checks are classified
//! ([`KeyLoad::Corrupt`], [`zkperf_io::ArtifactError::is_corruption`])
//! and the entry is evicted and rebuilt — a corrupt artifact is never
//! served. Backends whose keys are cheap and deterministic (PLONK's
//! seeded SRS, the STARK's parameter set) report [`KeyLoad::Unsupported`]
//! and rebuild on every cold load instead.
//!
//! Setup randomness is derived from the content key alone, so a rebuilt
//! entry is bit-identical to the original and proofs stay reproducible
//! across evictions.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::SeedableRng;

use zkperf_circuit::{lang, Circuit};
use zkperf_core::{KeyLoad, ProverBackend, StageError};
use zkperf_io::{read_r1cs_file, write_r1cs_file};

use crate::job::CircuitSpec;

/// Domain-separation constant for setup randomness.
const SETUP_SEED: u64 = 0x5e7_cafe_0000;

/// Hashes `(backend label, source)` into a 64-bit content key (FNV-1a).
/// The Groth16 labels are the bare engine names, preserving the on-disk
/// entries written before the backend-generic refactor.
pub fn content_key(curve: &str, source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [curve.as_bytes(), &[0u8], source.as_bytes()] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Counters exposed by [`ArtifactCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from memory.
    pub mem_hits: u64,
    /// Entries loaded from intact disk artifacts.
    pub disk_hits: u64,
    /// Entries built from scratch (cold or after eviction).
    pub builds: u64,
    /// Corrupt disk artifacts detected, evicted, and rebuilt.
    pub corrupt_evictions: u64,
}

/// Where an entry came from and what it cost, for per-stage accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadTiming {
    /// Nanoseconds spent compiling the source (zero on a memory hit).
    pub compile_nanos: u64,
    /// Nanoseconds spent acquiring the proving key — disk read on a hit,
    /// trusted setup on a build (zero on a memory hit).
    pub setup_nanos: u64,
}

/// A compiled circuit and its backend key material, shared across jobs.
pub struct CacheEntry<B: ProverBackend> {
    /// The compiled circuit (witness generation needs the instruction
    /// stream, not just the R1CS).
    pub circuit: Circuit<B::Fr>,
    /// The backend's prover-side keys (Groth16 proving key, PLONK SRS +
    /// selectors, STARK parameter set).
    pub keys: B::Keys,
    /// The entry's content key.
    pub key: u64,
}

/// The cache itself: an in-memory map over a disk directory.
pub struct ArtifactCache<B: ProverBackend> {
    dir: PathBuf,
    mem: HashMap<u64, Arc<CacheEntry<B>>>,
    stats: CacheStats,
}

impl<B: ProverBackend> ArtifactCache<B> {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StageError::Artifact`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ArtifactCache<B>, StageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StageError::Artifact {
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(ArtifactCache {
            dir,
            mem: HashMap::new(),
            stats: CacheStats::default(),
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn r1cs_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.r1cs"))
    }

    fn zkey_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.zkey"))
    }

    /// Returns the entry for `spec`, compiling and running setup only
    /// when no intact artifact exists.
    ///
    /// # Errors
    ///
    /// Compile and setup failures surface as their [`StageError`]
    /// variants; unreadable artifacts that are *not* corruption (e.g.
    /// permission errors) surface as [`StageError::Artifact`] carrying
    /// the offending path.
    pub fn load_or_build(
        &mut self,
        spec: &CircuitSpec,
    ) -> Result<(Arc<CacheEntry<B>>, LoadTiming), StageError> {
        let key = content_key(B::label(), &spec.source);
        if let Some(entry) = self.mem.get(&key) {
            self.stats.mem_hits += 1;
            return Ok((Arc::clone(entry), LoadTiming::default()));
        }

        // The instruction stream is required for witness generation, so
        // the compile always runs; the disk artifacts exist to skip the
        // trusted setup (the paper's 76%-of-runtime stage) and to
        // cross-check the compile output.
        let start = std::time::Instant::now();
        let circuit = lang::compile::<B::Fr>(&spec.source)?;
        self.reconcile_r1cs(key, &circuit)?;
        let compile_nanos = start.elapsed().as_nanos() as u64;

        let start = std::time::Instant::now();
        let keys = self.load_or_setup_keys(key, &circuit)?;
        let setup_nanos = start.elapsed().as_nanos() as u64;

        let entry = Arc::new(CacheEntry { circuit, keys, key });
        self.mem.insert(key, Arc::clone(&entry));
        Ok((
            entry,
            LoadTiming {
                compile_nanos,
                setup_nanos,
            },
        ))
    }

    /// Validates (or writes) the cached R1CS against the fresh compile.
    /// A readable-but-different R1CS under a content-addressed key means
    /// the file was tampered with or corrupted in a checksum-colliding
    /// way; it is evicted like any other corruption.
    fn reconcile_r1cs(&mut self, key: u64, circuit: &Circuit<B::Fr>) -> Result<(), StageError> {
        let path = self.r1cs_path(key);
        match read_r1cs_file::<B::Fr>(&path) {
            Ok(on_disk) if &on_disk == circuit.r1cs() => Ok(()),
            Ok(_) => {
                self.evict(&path);
                write_r1cs_file(&path, circuit.r1cs())?;
                Ok(())
            }
            Err(e) if e.is_missing() => {
                write_r1cs_file(&path, circuit.r1cs())?;
                Ok(())
            }
            Err(e) if e.is_corruption() => {
                self.evict(&path);
                write_r1cs_file(&path, circuit.r1cs())?;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    fn load_or_setup_keys(
        &mut self,
        key: u64,
        circuit: &Circuit<B::Fr>,
    ) -> Result<B::Keys, StageError> {
        let path = self.zkey_path(key);
        match B::load_keys(&path) {
            KeyLoad::Loaded(keys) => {
                self.stats.disk_hits += 1;
                Ok(keys)
            }
            // `Unsupported`: this backend rebuilds deterministically from
            // the seed instead of persisting keys — same build path as a
            // cold cache, minus the disk write (save_keys no-ops).
            KeyLoad::Missing | KeyLoad::Unsupported => self.build_keys(key, circuit, &path),
            KeyLoad::Corrupt => {
                self.evict(&path);
                self.build_keys(key, circuit, &path)
            }
            KeyLoad::Failed(e) => Err(e),
        }
    }

    fn build_keys(
        &mut self,
        key: u64,
        circuit: &Circuit<B::Fr>,
        path: &Path,
    ) -> Result<B::Keys, StageError> {
        self.stats.builds += 1;
        // Seeding from the content key makes rebuilt keys bit-identical,
        // which in turn keeps proofs byte-reproducible across evictions.
        let mut rng = rand::rngs::StdRng::seed_from_u64(SETUP_SEED ^ key);
        let keys = B::setup(circuit.r1cs(), &mut rng)?;
        B::save_keys(path, &keys)?;
        Ok(keys)
    }

    fn evict(&mut self, path: &Path) {
        self.stats.corrupt_evictions += 1;
        // Nothing to do about a failed unlink beyond the rebuild that
        // follows; the atomic rename will replace the entry either way.
        let _ = fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_core::{Groth16Backend, ProverBackend, StarkBackend};
    use zkperf_ec::{Bn254, Engine};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "zkperf-serve-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_round_trip_skips_setup() {
        let dir = tmpdir("roundtrip");
        let spec = CircuitSpec::exponentiate(8, 3);
        let mut cache = ArtifactCache::<Groth16Backend<Bn254>>::open(&dir).unwrap();
        let (first, timing) = cache.load_or_build(&spec).unwrap();
        assert!(timing.setup_nanos > 0);
        assert_eq!(cache.stats().builds, 1);

        // A fresh cache over the same directory loads from disk.
        let mut cache2 = ArtifactCache::<Groth16Backend<Bn254>>::open(&dir).unwrap();
        let (second, _) = cache2.load_or_build(&spec).unwrap();
        assert_eq!(cache2.stats().builds, 0);
        assert_eq!(cache2.stats().disk_hits, 1);
        assert_eq!(first.keys, second.keys);

        // Memory hit on repeat.
        cache2.load_or_build(&spec).unwrap();
        assert_eq!(cache2.stats().mem_hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_zkey_is_evicted_and_rebuilt_identically() {
        let dir = tmpdir("corrupt");
        let spec = CircuitSpec::exponentiate(8, 3);
        let mut cache = ArtifactCache::<Groth16Backend<Bn254>>::open(&dir).unwrap();
        let (original, _) = cache.load_or_build(&spec).unwrap();

        let key = content_key(Bn254::NAME, &spec.source);
        let zkey = dir.join(format!("{key:016x}.zkey"));
        let mut bytes = fs::read(&zkey).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&zkey, bytes).unwrap();

        let mut cache2 = ArtifactCache::<Groth16Backend<Bn254>>::open(&dir).unwrap();
        let (rebuilt, _) = cache2.load_or_build(&spec).unwrap();
        assert_eq!(cache2.stats().corrupt_evictions, 1);
        assert_eq!(cache2.stats().builds, 1);
        // Deterministic setup seed ⇒ the rebuild is bit-identical.
        assert_eq!(original.keys, rebuilt.keys);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transparent_backend_rebuilds_instead_of_persisting_keys() {
        let dir = tmpdir("stark");
        let spec = CircuitSpec::exponentiate(8, 3);
        let mut cache = ArtifactCache::<StarkBackend>::open(&dir).unwrap();
        let (entry, _) = cache.load_or_build(&spec).unwrap();
        assert_eq!(cache.stats().builds, 1);
        // No key artifact is written; only the compiled R1CS is cached.
        let zkey = dir.join(format!("{:016x}.zkey", entry.key));
        assert!(!zkey.exists(), "transparent keys are not persisted");

        // A fresh cache rebuilds (KeyLoad::Unsupported) rather than
        // reading from disk — transparent setup is cheap and seedless.
        let mut cache2 = ArtifactCache::<StarkBackend>::open(&dir).unwrap();
        cache2.load_or_build(&spec).unwrap();
        assert_eq!(cache2.stats().builds, 1);
        assert_eq!(cache2.stats().disk_hits, 0);

        // Distinct label ⇒ distinct content key from the Groth16 entry
        // for the same source.
        assert_ne!(
            content_key(StarkBackend::label(), &spec.source),
            content_key(Bn254::NAME, &spec.source)
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
