//! A content-addressed artifact cache for compiled circuits and setup
//! keys.
//!
//! Entries are keyed by a hash of the curve name and the circuit source,
//! so identical shapes share one compile + trusted setup across jobs,
//! retries, and server restarts. On disk each entry is a pair of
//! checksummed v2 containers (`{key}.r1cs`, `{key}.zkey`) written
//! atomically; reads that fail the container checks are classified by
//! [`zkperf_io::ArtifactError::is_corruption`] and the entry is evicted
//! and rebuilt — a corrupt artifact is never served.
//!
//! Setup randomness is derived from the content key alone, so a rebuilt
//! entry is bit-identical to the original and proofs stay reproducible
//! across evictions.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::SeedableRng;

use zkperf_circuit::{lang, Circuit};
use zkperf_core::StageError;
use zkperf_ec::{CurveParams, Engine};
use zkperf_groth16::{contribute, setup, ProvingKey};
use zkperf_io::{
    read_r1cs_file, read_zkey_file, write_r1cs_file, write_zkey_file, FieldCodec,
};

use crate::job::CircuitSpec;

/// Domain-separation constant for setup randomness.
const SETUP_SEED: u64 = 0x5e7_cafe_0000;

/// Hashes `(curve, source)` into a 64-bit content key (FNV-1a).
pub fn content_key(curve: &str, source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [curve.as_bytes(), &[0u8], source.as_bytes()] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Counters exposed by [`ArtifactCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from memory.
    pub mem_hits: u64,
    /// Entries loaded from intact disk artifacts.
    pub disk_hits: u64,
    /// Entries built from scratch (cold or after eviction).
    pub builds: u64,
    /// Corrupt disk artifacts detected, evicted, and rebuilt.
    pub corrupt_evictions: u64,
}

/// Where an entry came from and what it cost, for per-stage accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadTiming {
    /// Nanoseconds spent compiling the source (zero on a memory hit).
    pub compile_nanos: u64,
    /// Nanoseconds spent acquiring the proving key — disk read on a hit,
    /// trusted setup on a build (zero on a memory hit).
    pub setup_nanos: u64,
}

/// A compiled circuit and its proving key, shared across jobs.
pub struct CacheEntry<E: Engine> {
    /// The compiled circuit (witness generation needs the instruction
    /// stream, not just the R1CS).
    pub circuit: Circuit<E::Fr>,
    /// The Groth16 proving key (embeds the verification key).
    pub pk: ProvingKey<E>,
    /// The entry's content key.
    pub key: u64,
}

/// The cache itself: an in-memory map over a disk directory.
pub struct ArtifactCache<E: Engine> {
    dir: PathBuf,
    mem: HashMap<u64, Arc<CacheEntry<E>>>,
    stats: CacheStats,
}

impl<E: Engine> ArtifactCache<E>
where
    <E::G1 as CurveParams>::Base: FieldCodec,
    <E::G2 as CurveParams>::Base: FieldCodec,
{
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StageError::Artifact`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ArtifactCache<E>, StageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StageError::Artifact {
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(ArtifactCache {
            dir,
            mem: HashMap::new(),
            stats: CacheStats::default(),
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn r1cs_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.r1cs"))
    }

    fn zkey_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.zkey"))
    }

    /// Returns the entry for `spec`, compiling and running setup only
    /// when no intact artifact exists.
    ///
    /// # Errors
    ///
    /// Compile and setup failures surface as their [`StageError`]
    /// variants; unreadable artifacts that are *not* corruption (e.g.
    /// permission errors) surface as [`StageError::Artifact`] carrying
    /// the offending path.
    pub fn load_or_build(
        &mut self,
        spec: &CircuitSpec,
    ) -> Result<(Arc<CacheEntry<E>>, LoadTiming), StageError> {
        let key = content_key(E::NAME, &spec.source);
        if let Some(entry) = self.mem.get(&key) {
            self.stats.mem_hits += 1;
            return Ok((Arc::clone(entry), LoadTiming::default()));
        }

        // The instruction stream is required for witness generation, so
        // the compile always runs; the disk artifacts exist to skip the
        // trusted setup (the paper's 76%-of-runtime stage) and to
        // cross-check the compile output.
        let start = std::time::Instant::now();
        let circuit = lang::compile::<E::Fr>(&spec.source)?;
        self.reconcile_r1cs(key, &circuit)?;
        let compile_nanos = start.elapsed().as_nanos() as u64;

        let start = std::time::Instant::now();
        let pk = self.load_or_setup_pk(key, &circuit)?;
        let setup_nanos = start.elapsed().as_nanos() as u64;

        let entry = Arc::new(CacheEntry { circuit, pk, key });
        self.mem.insert(key, Arc::clone(&entry));
        Ok((
            entry,
            LoadTiming {
                compile_nanos,
                setup_nanos,
            },
        ))
    }

    /// Validates (or writes) the cached R1CS against the fresh compile.
    /// A readable-but-different R1CS under a content-addressed key means
    /// the file was tampered with or corrupted in a checksum-colliding
    /// way; it is evicted like any other corruption.
    fn reconcile_r1cs(&mut self, key: u64, circuit: &Circuit<E::Fr>) -> Result<(), StageError> {
        let path = self.r1cs_path(key);
        match read_r1cs_file::<E::Fr>(&path) {
            Ok(on_disk) if &on_disk == circuit.r1cs() => Ok(()),
            Ok(_) => {
                self.evict(&path);
                write_r1cs_file(&path, circuit.r1cs())?;
                Ok(())
            }
            Err(e) if e.is_missing() => {
                write_r1cs_file(&path, circuit.r1cs())?;
                Ok(())
            }
            Err(e) if e.is_corruption() => {
                self.evict(&path);
                write_r1cs_file(&path, circuit.r1cs())?;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    fn load_or_setup_pk(
        &mut self,
        key: u64,
        circuit: &Circuit<E::Fr>,
    ) -> Result<ProvingKey<E>, StageError> {
        let path = self.zkey_path(key);
        match read_zkey_file::<E>(&path) {
            Ok(pk) => {
                self.stats.disk_hits += 1;
                Ok(pk)
            }
            Err(e) if e.is_missing() => self.build_pk(key, circuit, &path),
            Err(e) if e.is_corruption() => {
                self.evict(&path);
                self.build_pk(key, circuit, &path)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn build_pk(
        &mut self,
        key: u64,
        circuit: &Circuit<E::Fr>,
        path: &Path,
    ) -> Result<ProvingKey<E>, StageError> {
        self.stats.builds += 1;
        // Seeding from the content key makes rebuilt keys bit-identical,
        // which in turn keeps proofs byte-reproducible across evictions.
        let mut rng = rand::rngs::StdRng::seed_from_u64(SETUP_SEED ^ key);
        let mut pk = setup::<E, _>(circuit.r1cs(), &mut rng)?;
        contribute::<E, _>(&mut pk, &mut rng);
        write_zkey_file::<E>(path, &pk)?;
        Ok(pk)
    }

    fn evict(&mut self, path: &Path) {
        self.stats.corrupt_evictions += 1;
        // Nothing to do about a failed unlink beyond the rebuild that
        // follows; the atomic rename will replace the entry either way.
        let _ = fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ec::Bn254;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "zkperf-serve-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_round_trip_skips_setup() {
        let dir = tmpdir("roundtrip");
        let spec = CircuitSpec::exponentiate(8, 3);
        let mut cache = ArtifactCache::<Bn254>::open(&dir).unwrap();
        let (first, timing) = cache.load_or_build(&spec).unwrap();
        assert!(timing.setup_nanos > 0);
        assert_eq!(cache.stats().builds, 1);

        // A fresh cache over the same directory loads from disk.
        let mut cache2 = ArtifactCache::<Bn254>::open(&dir).unwrap();
        let (second, _) = cache2.load_or_build(&spec).unwrap();
        assert_eq!(cache2.stats().builds, 0);
        assert_eq!(cache2.stats().disk_hits, 1);
        assert_eq!(first.pk, second.pk);

        // Memory hit on repeat.
        cache2.load_or_build(&spec).unwrap();
        assert_eq!(cache2.stats().mem_hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_zkey_is_evicted_and_rebuilt_identically() {
        let dir = tmpdir("corrupt");
        let spec = CircuitSpec::exponentiate(8, 3);
        let mut cache = ArtifactCache::<Bn254>::open(&dir).unwrap();
        let (original, _) = cache.load_or_build(&spec).unwrap();

        let key = content_key(Bn254::NAME, &spec.source);
        let zkey = dir.join(format!("{key:016x}.zkey"));
        let mut bytes = fs::read(&zkey).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&zkey, bytes).unwrap();

        let mut cache2 = ArtifactCache::<Bn254>::open(&dir).unwrap();
        let (rebuilt, _) = cache2.load_or_build(&spec).unwrap();
        assert_eq!(cache2.stats().corrupt_evictions, 1);
        assert_eq!(cache2.stats().builds, 1);
        // Deterministic setup seed ⇒ the rebuild is bit-identical.
        assert_eq!(original.pk, rebuilt.pk);
        let _ = fs::remove_dir_all(&dir);
    }
}
