//! Job specifications and typed outcomes.

use std::time::Duration;

use zkperf_circuit::library;

/// Identifies a submitted job for the lifetime of a server.
pub type JobId = u64;

/// Scheduling class. Under overload the queue sheds `Low` before
/// `Normal` before `High`; within a class, arrival order is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort; first to be shed.
    Low,
    /// The default class.
    Normal,
    /// Latency-sensitive; only shed to nothing.
    High,
}

impl Priority {
    /// Stable numeric rank (higher = more important).
    pub fn rank(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Decodes [`Priority::rank`]; unknown ranks clamp to `Low`.
    pub fn from_rank(rank: u8) -> Priority {
        match rank {
            2 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// What a circuit looks like, independent of any engine: compile `source`
/// and feed it the given inputs. Two specs with the same source are the
/// same circuit *shape* and share cache entries and breaker state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Short display name (e.g. `exp1024`).
    pub name: String,
    /// Circuit-language source text.
    pub source: String,
    /// Declared constraint count (used for admission cost estimates).
    pub constraints: usize,
    /// Public inputs, as small integers lifted into the scalar field.
    pub public_inputs: Vec<u64>,
    /// Private inputs, lifted the same way.
    pub private_inputs: Vec<u64>,
}

impl CircuitSpec {
    /// The paper's exponentiation benchmark circuit `y = x^constraints`.
    ///
    /// # Panics
    ///
    /// Panics if `constraints == 0` (the underlying generator requires at
    /// least one constraint).
    pub fn exponentiate(constraints: usize, x: u64) -> CircuitSpec {
        CircuitSpec {
            name: format!("exp{constraints}"),
            source: library::exponentiate_source(constraints),
            constraints,
            public_inputs: vec![x],
            private_inputs: Vec::new(),
        }
    }

    /// Rough resident-memory cost of proving this circuit, used for the
    /// admission controller's in-flight byte budget. Dominated by the
    /// proving key's group elements (a handful per wire) plus the
    /// evaluation-domain scratch vectors.
    pub fn estimated_bytes(&self) -> usize {
        self.constraints * 640 + (1 << 12)
    }
}

/// What the job asks the server to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Run the full pipeline and return serialized proof bytes.
    Prove,
    /// Check previously produced proof bytes against the circuit's
    /// public inputs (the cheap path that stays available when the
    /// service degrades).
    Verify {
        /// A `.proof` container as returned by a served prove job.
        proof: Vec<u8>,
    },
}

impl JobKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Prove => "prove",
            JobKind::Verify { .. } => "verify",
        }
    }
}

/// A job as submitted by a client.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The circuit to run.
    pub circuit: CircuitSpec,
    /// Prove or verify.
    pub kind: JobKind,
    /// Scheduling class.
    pub priority: Priority,
    /// Optional completion budget, measured from admission. `None`
    /// inherits the server default (which may also be `None`).
    pub deadline: Option<Duration>,
}

/// Why the admission controller refused a job. Every rejection carries
/// enough context for the client to act (back off, drop priority, retry
/// against another instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue is at capacity and the job does not outrank anything
    /// already enqueued.
    QueueFull {
        /// Current depth.
        depth: usize,
        /// Configured limit.
        limit: usize,
    },
    /// Admitting the job would exceed the in-flight memory budget.
    InflightBytes {
        /// Bytes currently accounted (queued + executing).
        bytes: usize,
        /// This job's estimated cost.
        cost: usize,
        /// Configured limit.
        limit: usize,
    },
    /// The service has degraded to verify-only; prove jobs are refused.
    VerifyOnly,
    /// The server is draining for shutdown.
    Draining,
    /// This circuit shape is quarantined by the circuit breaker.
    CircuitOpen {
        /// Content key of the quarantined shape.
        key: u64,
        /// Submission tick at which the breaker half-opens.
        until_tick: u64,
    },
    /// The job was admitted but later shed to make room for a
    /// higher-priority arrival.
    Shed {
        /// The job that displaced it.
        by: JobId,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth, limit } => {
                write!(f, "queue full ({depth}/{limit})")
            }
            RejectReason::InflightBytes { bytes, cost, limit } => write!(
                f,
                "in-flight byte budget exceeded ({bytes} held + {cost} requested > {limit})"
            ),
            RejectReason::VerifyOnly => write!(f, "service degraded to verify-only"),
            RejectReason::Draining => write!(f, "server draining"),
            RejectReason::CircuitOpen { key, until_tick } => write!(
                f,
                "circuit {key:016x} quarantined until tick {until_tick}"
            ),
            RejectReason::Shed { by } => write!(f, "shed for higher-priority job {by}"),
        }
    }
}

/// The single typed outcome every accepted job ends with (and every
/// rejected submission records). The accounting invariant — one outcome
/// per submitted job, no silent drops — is what the `serve_smoke` tier
/// checks under chaos.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job completed inside its deadline.
    Served {
        /// Serialized `.proof` container (empty for verify jobs).
        proof: Vec<u8>,
        /// Verification result, when the job asked for one.
        verified: Option<bool>,
        /// Attempts consumed (1 = first try).
        attempts: u32,
    },
    /// Refused at admission, or shed later.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// The deadline expired before (or while) the job ran.
    DeadlineExceeded {
        /// Stage boundary that observed the expiry.
        stage: String,
        /// Attempts consumed before giving up.
        attempts: u32,
    },
    /// Explicitly cancelled (drain without checkpoint slot, or caller).
    Cancelled {
        /// Stage boundary that observed the cancellation.
        stage: String,
    },
    /// All retry attempts failed.
    Failed {
        /// Final error, rendered.
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

impl JobOutcome {
    /// Whether the outcome counts as successfully served.
    pub fn is_served(&self) -> bool {
        matches!(self, JobOutcome::Served { .. })
    }
}
