#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! zkperf-serve: a fault-tolerant proving-as-a-service daemon.
//!
//! The paper measures zk-SNARK stages in isolation; this crate puts the
//! same pipeline behind a service boundary and measures what operators
//! actually run: a long-lived job server with
//!
//! - **admission control** — a bounded queue with per-job memory-cost
//!   accounting; overload is rejected with a typed [`RejectReason`]
//!   rather than absorbed,
//! - **per-job deadlines** — cooperative cancellation via
//!   [`zkperf_pool::CancelToken`]; kernels stop at stage boundaries, so
//!   determinism is never sacrificed to a kill,
//! - **retries** — capped jittered exponential backoff from
//!   [`zkperf_resilience::RetryPolicy`], deterministic under a fixed seed,
//! - **circuit breakers** — circuit shapes that fail repeatedly are
//!   quarantined for a cooldown instead of burning the queue,
//! - **graceful degradation** — under overload the lowest-priority jobs
//!   are shed first and the service falls back to verify-only; shutdown
//!   drains to a checkpoint that a successor process can resume,
//! - **artifact caching** — compiled R1CS and setup keys live in a
//!   content-addressed disk cache on checksummed containers; corrupt
//!   entries are detected, evicted, and rebuilt — never served.
//!
//! Proofs are bit-reproducible: setup randomness derives from the circuit
//! content key and proving randomness from the job's inputs, so a retried,
//! shed-and-resubmitted, or checkpoint-resumed job yields byte-identical
//! proof to a serial run of the same spec ([`prove_serial`]).
//!
//! The `loadgen` binary replays an open-loop mixed trace through the
//! server (optionally under `ZKPERF_CHAOS`) and reports per-stage
//! p50/p99/p99.9 latencies plus cost-per-proof.

mod breaker;
mod cache;
mod job;
mod metrics;
mod queue;
mod server;

pub use breaker::{BreakerDecision, CircuitBreaker};
pub use cache::{content_key, ArtifactCache, CacheEntry, CacheStats, LoadTiming};
pub use job::{CircuitSpec, JobId, JobKind, JobOutcome, JobSpec, Priority, RejectReason};
pub use metrics::{
    LatencyRecorder, MemoryStats, ServeReport, StageRow, StageTable, DEFAULT_DOLLARS_PER_CPU_HOUR,
};
pub use queue::{AdmissionConfig, AdmissionQueue, QueuedJob};
pub use server::{prove_serial, ResumeOutcomes, ServerConfig, ServiceMode, Server};
