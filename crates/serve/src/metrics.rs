//! Latency recording and the loadgen report: per-stage p50/p99/p99.9
//! plus cost-per-proof.

use std::collections::BTreeMap;
use std::fmt;

use zkperf_pool as pool;

/// A working assumption for converting CPU-busy time into dollars:
/// roughly an on-demand cloud vCPU-hour.
pub const DEFAULT_DOLLARS_PER_CPU_HOUR: f64 = 0.045;

/// Collects latency samples (nanoseconds) and answers percentile queries
/// by the nearest-rank method.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, nanos: u64) {
        self.samples.push(nanos);
    }

    /// Sample count.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all samples (total busy time attributed to this series).
    pub fn total(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Nearest-rank percentile; `q` in `(0, 100]`. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

/// Per-stage recorders keyed by stage name, in insertion-stable
/// (alphabetical) order for reproducible reports.
#[derive(Debug, Default)]
pub struct StageTable {
    stages: BTreeMap<String, LatencyRecorder>,
    streamed: BTreeMap<String, u64>,
}

impl StageTable {
    /// An empty table.
    pub fn new() -> StageTable {
        StageTable::default()
    }

    /// Records `nanos` against `stage`.
    pub fn record(&mut self, stage: &str, nanos: u64) {
        self.stages.entry(stage.to_string()).or_default().record(nanos);
    }

    /// Adds `bytes` moved through the streaming chunk transport while
    /// `stage` ran (out-of-core chunk reads/writes under a memory budget).
    pub fn record_streamed(&mut self, stage: &str, bytes: u64) {
        *self.streamed.entry(stage.to_string()).or_default() += bytes;
    }

    /// Total streamed bytes attributed to `stage`.
    pub fn streamed_for(&self, stage: &str) -> u64 {
        self.streamed.get(stage).copied().unwrap_or(0)
    }

    /// The recorder for `stage`, if any samples exist.
    pub fn get(&self, stage: &str) -> Option<&LatencyRecorder> {
        self.stages.get(stage)
    }

    /// Total busy nanoseconds across all stages.
    pub fn total_busy_nanos(&self) -> u64 {
        self.stages.values().map(LatencyRecorder::total).sum()
    }

    /// Iterates `(stage, recorder)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &LatencyRecorder)> {
        self.stages.iter().map(|(k, v)| (k.as_str(), v))
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Process-level memory accounting attached to a [`ServeReport`]: the
/// tracking allocator's high-water mark, the kernel's peak RSS, the bytes
/// moved by the streaming chunk transport, and the active budget.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryStats {
    /// High-water mark of live heap bytes (tracking allocator).
    pub peak_live_bytes: u64,
    /// Kernel-reported peak resident set (`VmHWM`), when available.
    pub peak_rss_bytes: Option<u64>,
    /// Total bytes moved through the streaming chunk transport.
    pub streamed_bytes: u64,
    /// The `ZKPERF_MEM_BUDGET` in force, when one is set.
    pub budget_bytes: Option<u64>,
}

impl MemoryStats {
    /// Snapshots the ambient accounting (allocator high-water mark,
    /// `/proc` peak RSS, streamed-byte counter, budget).
    pub fn capture() -> MemoryStats {
        MemoryStats {
            peak_live_bytes: pool::mem::peak_live_bytes() as u64,
            peak_rss_bytes: pool::mem::peak_rss_bytes(),
            streamed_bytes: pool::mem::streamed_bytes(),
            budget_bytes: pool::mem::budget(),
        }
    }
}

fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// The loadgen summary: the stage latency table plus service counters and
/// the cost-per-proof estimate.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-stage latency distributions.
    pub stages: Vec<StageRow>,
    /// Jobs served.
    pub served: u64,
    /// Of which prove jobs (the denominator for cost-per-proof).
    pub proofs: u64,
    /// Typed rejections (admission + shed).
    pub rejected: u64,
    /// Deadline expiries.
    pub deadline_exceeded: u64,
    /// Terminal failures after retries.
    pub failed: u64,
    /// Explicit cancellations.
    pub cancelled: u64,
    /// Combined pairing checks executed over batched verify jobs.
    pub verify_batches: u64,
    /// Verify jobs that were served through a combined check.
    pub batched_verifies: u64,
    /// Total CPU-busy nanoseconds across all stages and attempts.
    pub busy_nanos: u64,
    /// Price assumption used for the cost line.
    pub dollars_per_cpu_hour: f64,
    /// Process memory accounting at report time.
    pub memory: MemoryStats,
}

/// One row of the stage table.
#[derive(Debug)]
pub struct StageRow {
    /// Stage name.
    pub stage: String,
    /// 50th percentile, nanoseconds.
    pub p50: u64,
    /// 99th percentile, nanoseconds.
    pub p99: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999: u64,
    /// Worst sample, nanoseconds.
    pub max: u64,
    /// Sample count.
    pub count: usize,
    /// Bytes moved through the streaming chunk transport during this
    /// stage across all jobs (0 for fully in-memory stages).
    pub streamed: u64,
}

impl ServeReport {
    /// Builds a report from a stage table and outcome counters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        table: &StageTable,
        served: u64,
        proofs: u64,
        rejected: u64,
        deadline_exceeded: u64,
        failed: u64,
        cancelled: u64,
        verify_batches: u64,
        batched_verifies: u64,
        dollars_per_cpu_hour: f64,
        memory: MemoryStats,
    ) -> ServeReport {
        let stages = table
            .iter()
            .map(|(stage, rec)| StageRow {
                stage: stage.to_string(),
                p50: rec.percentile(50.0),
                p99: rec.percentile(99.0),
                p999: rec.percentile(99.9),
                max: rec.max(),
                count: rec.count(),
                streamed: table.streamed_for(stage),
            })
            .collect();
        ServeReport {
            stages,
            served,
            proofs,
            rejected,
            deadline_exceeded,
            failed,
            cancelled,
            verify_batches,
            batched_verifies,
            busy_nanos: table.total_busy_nanos(),
            dollars_per_cpu_hour,
            memory,
        }
    }

    /// Miller loops saved by verify batching: `k` jobs checked together
    /// cost `2k + 3` loops instead of `4k`, so each combined check of `k`
    /// members saves `2k − 3`.
    pub fn miller_loops_saved(&self) -> u64 {
        (2 * self.batched_verifies).saturating_sub(3 * self.verify_batches)
    }

    /// Dollars of CPU time spent per successfully served proof
    /// (`None` when no proofs were served).
    pub fn cost_per_proof(&self) -> Option<f64> {
        if self.proofs == 0 {
            return None;
        }
        let hours = self.busy_nanos as f64 / 3.6e12;
        Some(hours * self.dollars_per_cpu_hour / self.proofs as f64)
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
            "stage", "p50", "p99", "p99.9", "max", "count", "streamed"
        )?;
        for row in &self.stages {
            writeln!(
                f,
                "{:<10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
                row.stage,
                fmt_nanos(row.p50),
                fmt_nanos(row.p99),
                fmt_nanos(row.p999),
                fmt_nanos(row.max),
                row.count,
                fmt_bytes(row.streamed)
            )?;
        }
        writeln!(
            f,
            "outcomes: served={} rejected={} deadline_exceeded={} failed={} cancelled={}",
            self.served, self.rejected, self.deadline_exceeded, self.failed, self.cancelled
        )?;
        write!(
            f,
            "memory: peak-live={} streamed={}",
            fmt_bytes(self.memory.peak_live_bytes),
            fmt_bytes(self.memory.streamed_bytes)
        )?;
        match self.memory.peak_rss_bytes {
            Some(rss) => write!(f, " peak-rss={}", fmt_bytes(rss))?,
            None => write!(f, " peak-rss=n/a")?,
        }
        match self.memory.budget_bytes {
            Some(b) => writeln!(f, " budget={}", fmt_bytes(b))?,
            None => writeln!(f, " budget=unset")?,
        }
        if self.verify_batches > 0 {
            writeln!(
                f,
                "batching: {} verifies in {} combined checks ({} Miller loops saved)",
                self.batched_verifies,
                self.verify_batches,
                self.miller_loops_saved()
            )?;
        }
        match self.cost_per_proof() {
            Some(c) => writeln!(
                f,
                "cost: {} proofs, {} busy, ${c:.8}/proof (at ${}/cpu-hour)",
                self.proofs,
                fmt_nanos(self.busy_nanos),
                self.dollars_per_cpu_hour
            ),
            None => writeln!(f, "cost: no proofs served"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let mut r = LatencyRecorder::new();
        for n in 1..=100u64 {
            r.record(n * 10);
        }
        assert_eq!(r.percentile(50.0), 500);
        assert_eq!(r.percentile(99.0), 990);
        assert_eq!(r.percentile(99.9), 1000);
        assert_eq!(r.max(), 1000);
        assert_eq!(r.count(), 100);
    }

    #[test]
    fn empty_recorder_is_zeroes() {
        let r = LatencyRecorder::new();
        assert_eq!(r.percentile(50.0), 0);
        assert_eq!(r.max(), 0);
    }

    #[test]
    fn report_cost_per_proof() {
        let mut t = StageTable::new();
        t.record("prove", 3_600_000_000); // 3.6s busy
        t.record_streamed("prove", 5 << 20);
        let mem = MemoryStats {
            peak_live_bytes: 100 << 20,
            peak_rss_bytes: Some(200 << 20),
            streamed_bytes: 5 << 20,
            budget_bytes: Some(64 << 20),
        };
        let report = ServeReport::new(&t, 1, 1, 0, 0, 0, 0, 0, 0, 36.0, mem);
        // 3.6s = 1e-3 hours; at $36/hr that is $0.036 for one proof.
        let c = report.cost_per_proof().unwrap();
        assert!((c - 0.036).abs() < 1e-12, "{c}");
        let rendered = report.to_string();
        assert!(rendered.contains("prove"));
        assert!(rendered.contains("/proof"));
        // The per-stage streamed column and the memory line both render.
        assert!(rendered.contains("5.0MiB"), "{rendered}");
        assert!(rendered.contains("memory: peak-live=100.0MiB"), "{rendered}");
        assert!(rendered.contains("peak-rss=200.0MiB"), "{rendered}");
        assert!(rendered.contains("budget=64.0MiB"), "{rendered}");
        // No batching happened → no batching line.
        assert!(!rendered.contains("batching:"));
    }

    #[test]
    fn report_amortization_line() {
        let t = StageTable::new();
        // 16 verifies through 2 combined checks of 8: each check costs
        // 2·8 + 3 = 19 loops instead of 4·8 = 32, saving 13 — 26 total.
        let report = ServeReport::new(&t, 16, 0, 0, 0, 0, 0, 2, 16, 36.0, MemoryStats::default());
        assert_eq!(report.miller_loops_saved(), 26);
        let rendered = report.to_string();
        assert!(rendered.contains("batching: 16 verifies in 2 combined checks"));
        assert!(rendered.contains("26 Miller loops saved"));
    }
}
