//! The bounded admission queue: depth + in-flight byte budgets, priority
//! ordering, and shed-lowest-first displacement.

use crate::job::{JobId, JobKind, JobSpec, Priority, RejectReason};

/// Limits enforced at admission.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum queued (not yet completed) jobs.
    pub max_depth: usize,
    /// Maximum estimated bytes across queued and executing jobs.
    pub max_inflight_bytes: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_depth: 64,
            max_inflight_bytes: 1 << 30,
        }
    }
}

/// An admitted job waiting to execute.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Server-assigned id.
    pub id: JobId,
    /// The submission.
    pub spec: JobSpec,
    /// Admission-time cost estimate, released on completion.
    pub cost_bytes: usize,
    /// Monotone arrival sequence (FIFO within a priority class).
    pub seq: u64,
}

/// A bounded priority queue with byte accounting.
///
/// Ordering: [`Priority::High`] drains before `Normal` before `Low`;
/// within a class, arrival order. When the queue is full, an arriving job
/// that strictly outranks the worst enqueued job displaces it ("shed
/// lowest priority first"; among equals the youngest goes, preserving the
/// oldest work). Arrivals that don't outrank anything are rejected.
#[derive(Debug)]
pub struct AdmissionQueue {
    cfg: AdmissionConfig,
    entries: Vec<QueuedJob>,
    inflight_bytes: usize,
}

impl AdmissionQueue {
    /// An empty queue under `cfg`.
    pub fn new(cfg: AdmissionConfig) -> AdmissionQueue {
        AdmissionQueue {
            cfg,
            entries: Vec::new(),
            inflight_bytes: 0,
        }
    }

    /// Jobs currently queued (excludes executing jobs).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Bytes held by queued and executing jobs.
    pub fn inflight_bytes(&self) -> usize {
        self.inflight_bytes
    }

    /// Tries to admit `job`. On success returns the displaced victim, if
    /// admission had to shed one. On failure returns the typed reason.
    ///
    /// Byte budget is a hard limit: a job whose cost cannot fit alongside
    /// the current in-flight set is rejected rather than shedding several
    /// smaller jobs to make room.
    pub fn admit(&mut self, job: QueuedJob) -> Result<Option<QueuedJob>, RejectReason> {
        if self.inflight_bytes + job.cost_bytes > self.cfg.max_inflight_bytes {
            return Err(RejectReason::InflightBytes {
                bytes: self.inflight_bytes,
                cost: job.cost_bytes,
                limit: self.cfg.max_inflight_bytes,
            });
        }
        let mut shed = None;
        if self.entries.len() >= self.cfg.max_depth {
            match self.shed_index(job.spec.priority) {
                Some(i) => {
                    let victim = self.entries.remove(i);
                    self.inflight_bytes -= victim.cost_bytes;
                    shed = Some(victim);
                }
                None => {
                    return Err(RejectReason::QueueFull {
                        depth: self.entries.len(),
                        limit: self.cfg.max_depth,
                    })
                }
            }
        }
        self.inflight_bytes += job.cost_bytes;
        self.entries.push(job);
        Ok(shed)
    }

    /// Index of the job to shed for an arrival at `incoming` priority:
    /// the youngest member of the strictly-lowest priority class, and
    /// only when that class ranks below `incoming`.
    fn shed_index(&self, incoming: Priority) -> Option<usize> {
        let worst = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, j)| (j.spec.priority.rank(), u64::MAX - j.seq))?;
        (worst.1.spec.priority < incoming).then_some(worst.0)
    }

    /// Removes and returns the next job to execute: highest priority,
    /// then oldest. Its bytes stay accounted until [`Self::release`].
    pub fn pop(&mut self) -> Option<QueuedJob> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, j)| (j.spec.priority.rank(), u64::MAX - j.seq))?
            .0;
        Some(self.entries.remove(best))
    }

    /// Removes and returns the next job to execute only when `pred`
    /// accepts it; otherwise leaves the queue untouched. Lets the server
    /// assemble verify batches without disturbing priority order — the
    /// candidate is always the job [`Self::pop`] would have returned.
    pub fn pop_if(&mut self, pred: impl FnOnce(&QueuedJob) -> bool) -> Option<QueuedJob> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, j)| (j.spec.priority.rank(), u64::MAX - j.seq))?
            .0;
        if pred(&self.entries[best]) {
            Some(self.entries.remove(best))
        } else {
            None
        }
    }

    /// Returns a completed (or abandoned) job's bytes to the budget.
    pub fn release(&mut self, cost_bytes: usize) {
        self.inflight_bytes = self.inflight_bytes.saturating_sub(cost_bytes);
    }

    /// Drains every queued job (for checkpointing), releasing their bytes.
    pub fn drain_all(&mut self) -> Vec<QueuedJob> {
        let mut out = std::mem::take(&mut self.entries);
        // Checkpoint in execution order so resume replays identically.
        out.sort_by_key(|j| (std::cmp::Reverse(j.spec.priority.rank()), j.seq));
        for j in &out {
            self.inflight_bytes = self.inflight_bytes.saturating_sub(j.cost_bytes);
        }
        out
    }

    /// Whether any queued job is a prove job (used for degradation
    /// decisions).
    pub fn has_prove_work(&self) -> bool {
        self.entries
            .iter()
            .any(|j| matches!(j.spec.kind, JobKind::Prove))
    }

    /// Ids currently queued, in execution order (tests / introspection).
    pub fn queued_ids(&self) -> Vec<JobId> {
        let mut v: Vec<&QueuedJob> = self.entries.iter().collect();
        v.sort_by_key(|j| (std::cmp::Reverse(j.spec.priority.rank()), j.seq));
        v.into_iter().map(|j| j.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CircuitSpec, JobKind, JobSpec};

    fn job(id: JobId, seq: u64, priority: Priority) -> QueuedJob {
        QueuedJob {
            id,
            spec: JobSpec {
                circuit: CircuitSpec::exponentiate(4, 3),
                kind: JobKind::Prove,
                priority,
                deadline: None,
            },
            cost_bytes: 100,
            seq,
        }
    }

    fn queue(depth: usize, bytes: usize) -> AdmissionQueue {
        AdmissionQueue::new(AdmissionConfig {
            max_depth: depth,
            max_inflight_bytes: bytes,
        })
    }

    #[test]
    fn pops_by_priority_then_arrival() {
        let mut q = queue(8, 10_000);
        q.admit(job(1, 1, Priority::Low)).unwrap();
        q.admit(job(2, 2, Priority::High)).unwrap();
        q.admit(job(3, 3, Priority::Normal)).unwrap();
        q.admit(job(4, 4, Priority::High)).unwrap();
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop()).map(|j| j.id).collect();
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    fn sheds_youngest_of_lowest_class_first() {
        let mut q = queue(3, 10_000);
        q.admit(job(1, 1, Priority::Low)).unwrap();
        q.admit(job(2, 2, Priority::Normal)).unwrap();
        q.admit(job(3, 3, Priority::Low)).unwrap();
        // Full. A High arrival displaces the *youngest Low* (id 3).
        let shed = q.admit(job(4, 4, Priority::High)).unwrap();
        assert_eq!(shed.map(|j| j.id), Some(3));
        // Another High displaces the remaining Low (id 1).
        let shed = q.admit(job(5, 5, Priority::High)).unwrap();
        assert_eq!(shed.map(|j| j.id), Some(1));
        // A Normal arrival cannot displace Normal/High — typed rejection.
        let err = q.admit(job(6, 6, Priority::Normal)).unwrap_err();
        assert!(matches!(err, RejectReason::QueueFull { depth: 3, limit: 3 }));
    }

    #[test]
    fn byte_budget_is_a_hard_reject() {
        let mut q = queue(8, 250);
        q.admit(job(1, 1, Priority::High)).unwrap();
        q.admit(job(2, 2, Priority::High)).unwrap();
        let err = q.admit(job(3, 3, Priority::High)).unwrap_err();
        assert!(matches!(
            err,
            RejectReason::InflightBytes { bytes: 200, cost: 100, limit: 250 }
        ));
        // Bytes are held until release, even after pop.
        let popped = q.pop().unwrap();
        assert_eq!(q.inflight_bytes(), 200);
        q.release(popped.cost_bytes);
        assert_eq!(q.inflight_bytes(), 100);
        q.admit(job(4, 4, Priority::Low)).unwrap();
    }
}
