//! The job server: admission → deadline → retry → breaker → degradation.
//!
//! Execution is a deterministic synchronous loop: [`Server::submit`]
//! performs admission (ticking the breaker clock), [`Server::step`] /
//! [`Server::run_until_drained`] execute queued jobs in priority order on
//! the calling thread (stage kernels still fan out over the global
//! work-stealing pool). Every submitted job ends with exactly one typed
//! [`JobOutcome`] — the accounting invariant the `serve_smoke` tier
//! checks under chaos.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::time::{Duration, Instant};

use rand::SeedableRng;

use zkperf_core::{ProverBackend, Stage, StageError};
use zkperf_ff::Field;
use zkperf_io::{
    read_container_file, write_container_file, Container, Cursor, Payload,
};
use zkperf_pool::CancelToken;
use zkperf_resilience::{ChaosMode, RetryPolicy};

use crate::breaker::{BreakerDecision, CircuitBreaker};
use crate::cache::{content_key, ArtifactCache, CacheStats, LoadTiming};
use crate::job::{CircuitSpec, JobId, JobKind, JobOutcome, JobSpec, Priority, RejectReason};
use crate::metrics::{ServeReport, StageTable, DEFAULT_DOLLARS_PER_CPU_HOUR};
use crate::queue::{AdmissionConfig, AdmissionQueue, QueuedJob};

/// Container magic for drain checkpoints.
const MAGIC_CHECKPOINT: [u8; 4] = *b"zksv";
/// Checkpoint section holding the serialized job list.
const SEC_JOBS: u32 = 1;
/// Sentinel for "no deadline" in the checkpoint encoding.
const NO_DEADLINE: u64 = u64::MAX;

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Queue depth and in-flight byte limits.
    pub admission: AdmissionConfig,
    /// Retry schedule for failed attempts (jittered exponential backoff;
    /// deterministic under its seed).
    pub retry: RetryPolicy,
    /// Terminal failures of one circuit shape before its breaker opens.
    pub breaker_threshold: u32,
    /// Submission ticks an open breaker waits before half-opening.
    pub breaker_cooldown_ticks: u64,
    /// Deadline applied to jobs that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Queue depth at which the service degrades to verify-only
    /// (recovers at half this depth). `usize::MAX` disables degradation.
    pub verify_only_depth: usize,
    /// Maximum verify jobs drained into one combined pairing check
    /// (`2k + 3` Miller loops instead of `4k`). Values below 2 disable
    /// batching. Only deadline-free verify jobs of the same circuit are
    /// batched; everything else keeps the per-job path.
    pub verify_batch_max: usize,
    /// Fault-injection plan for stage boundaries (off by default; the
    /// loadgen arms it from `ZKPERF_CHAOS`).
    pub chaos: ChaosMode,
    /// Price assumption for the cost-per-proof report line.
    pub dollars_per_cpu_hour: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            admission: AdmissionConfig::default(),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                jitter: 0.5,
                jitter_seed: 0x5e12_7e5e,
                timeout: None,
            },
            breaker_threshold: 3,
            breaker_cooldown_ticks: 16,
            default_deadline: None,
            verify_only_depth: usize::MAX,
            verify_batch_max: 8,
            chaos: ChaosMode::Off,
            dollars_per_cpu_hour: DEFAULT_DOLLARS_PER_CPU_HOUR,
        }
    }
}

/// Per-job resume results: `(original id, new id or typed rejection)`.
pub type ResumeOutcomes = Vec<(JobId, Result<JobId, RejectReason>)>;

/// The service's degradation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Accepting all job kinds.
    Normal,
    /// Overloaded: prove jobs refused, verify jobs still served.
    VerifyOnly,
    /// Shutting down: all new jobs refused.
    Draining,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: u64,
    served: u64,
    proofs: u64,
    rejected: u64,
    shed: u64,
    deadline_exceeded: u64,
    failed: u64,
    cancelled: u64,
    verify_batches: u64,
    batched_verifies: u64,
}

/// A proving-as-a-service instance over proving backend `B`.
pub struct Server<B: ProverBackend> {
    cfg: ServerConfig,
    queue: AdmissionQueue,
    breaker: CircuitBreaker,
    cache: ArtifactCache<B>,
    metrics: StageTable,
    outcomes: BTreeMap<JobId, JobOutcome>,
    deadlines: HashMap<JobId, Instant>,
    mode: ServiceMode,
    tick: u64,
    next_id: JobId,
    next_seq: u64,
    counters: Counters,
}

/// Randomness seed for proving `spec`: a pure function of the circuit
/// content key and the job's inputs, so retries, resubmissions, and the
/// serial path all produce byte-identical proofs.
fn prove_seed(key: u64, spec: &CircuitSpec) -> u64 {
    let mut h: u64 = 0x70_1e5e ^ key;
    for &v in spec.public_inputs.iter().chain(&spec.private_inputs) {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3).rotate_left(17);
    }
    h
}

impl<B: ProverBackend> Server<B> {
    /// Opens a server whose artifact cache lives under `cache_dir`.
    ///
    /// # Errors
    ///
    /// [`StageError::Artifact`] when the cache directory cannot be
    /// created.
    pub fn open(cache_dir: impl Into<std::path::PathBuf>, cfg: ServerConfig) -> Result<Server<B>, StageError> {
        let cache = ArtifactCache::open(cache_dir)?;
        Ok(Server {
            breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_ticks),
            queue: AdmissionQueue::new(cfg.admission.clone()),
            cache,
            cfg,
            metrics: StageTable::new(),
            outcomes: BTreeMap::new(),
            deadlines: HashMap::new(),
            mode: ServiceMode::Normal,
            tick: 0,
            next_id: 1,
            next_seq: 0,
            counters: Counters::default(),
        })
    }

    /// Current degradation state.
    pub fn mode(&self) -> ServiceMode {
        self.mode
    }

    /// Submission ticks elapsed (the breaker clock).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Ids currently queued, in execution order.
    pub fn queued_ids(&self) -> Vec<JobId> {
        self.queue.queued_ids()
    }

    /// Artifact cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The outcome recorded for `id`, if it has one yet.
    pub fn outcome(&self, id: JobId) -> Option<&JobOutcome> {
        self.outcomes.get(&id)
    }

    /// All recorded outcomes, ordered by job id.
    pub fn outcomes(&self) -> impl Iterator<Item = (JobId, &JobOutcome)> {
        self.outcomes.iter().map(|(&id, o)| (id, o))
    }

    /// Submits a job. Always returns the assigned id; the `Err` side
    /// carries the typed admission rejection (also recorded as the job's
    /// outcome).
    pub fn submit(&mut self, spec: JobSpec) -> (JobId, Result<(), RejectReason>) {
        let id = self.next_id;
        self.next_id += 1;
        self.tick += 1;
        self.counters.submitted += 1;

        if let Err(reason) = self.admit(id, spec) {
            self.counters.rejected += 1;
            self.outcomes
                .insert(id, JobOutcome::Rejected { reason: reason.clone() });
            return (id, Err(reason));
        }
        self.update_mode();
        (id, Ok(()))
    }

    fn admit(&mut self, id: JobId, spec: JobSpec) -> Result<(), RejectReason> {
        match self.mode {
            ServiceMode::Draining => return Err(RejectReason::Draining),
            ServiceMode::VerifyOnly if matches!(spec.kind, JobKind::Prove) => {
                return Err(RejectReason::VerifyOnly)
            }
            _ => {}
        }

        let key = content_key(B::label(), &spec.circuit.source);
        let key_label = format!("{key:016x}");
        match self.breaker.check(&key_label, self.tick) {
            BreakerDecision::Reject { until_tick } => {
                return Err(RejectReason::CircuitOpen { key, until_tick })
            }
            BreakerDecision::Allow | BreakerDecision::Probe => {}
        }

        let deadline = spec.deadline.or(self.cfg.default_deadline);
        let cost_bytes = spec.circuit.estimated_bytes();
        let seq = self.next_seq;
        self.next_seq += 1;
        let shed = self.queue.admit(QueuedJob {
            id,
            spec,
            cost_bytes,
            seq,
        })?;
        if let Some(victim) = shed {
            self.counters.shed += 1;
            self.counters.rejected += 1;
            self.deadlines.remove(&victim.id);
            self.outcomes.insert(
                victim.id,
                JobOutcome::Rejected {
                    reason: RejectReason::Shed { by: id },
                },
            );
        }
        if let Some(d) = deadline {
            self.deadlines.insert(id, Instant::now() + d);
        }
        Ok(())
    }

    fn update_mode(&mut self) {
        if self.mode == ServiceMode::Draining {
            return;
        }
        let depth = self.queue.depth();
        if depth >= self.cfg.verify_only_depth {
            self.mode = ServiceMode::VerifyOnly;
        } else if depth <= self.cfg.verify_only_depth / 2 {
            self.mode = ServiceMode::Normal;
        }
    }

    /// Executes the next queued job — or, when the head of the queue is a
    /// deadline-free verify job, drains up to
    /// [`ServerConfig::verify_batch_max`] same-circuit verify jobs behind
    /// it into one combined pairing check. Returns false when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(job) = self.queue.pop() else {
            return false;
        };
        let mut batch = self.collect_verify_batch(job);
        if batch.len() >= 2 {
            self.execute_verify_batch(batch);
        } else if let Some(job) = batch.pop() {
            self.finish_single(job);
        }
        true
    }

    /// The per-job execution path: retry loop, outcome recording, byte
    /// release, mode update.
    fn finish_single(&mut self, job: QueuedJob) {
        let cost = job.cost_bytes;
        let outcome = self.execute(job.id, &job.spec);
        match &outcome {
            JobOutcome::Served { proof, .. } => {
                self.counters.served += 1;
                if !proof.is_empty() {
                    self.counters.proofs += 1;
                }
            }
            JobOutcome::DeadlineExceeded { .. } => self.counters.deadline_exceeded += 1,
            JobOutcome::Cancelled { .. } => self.counters.cancelled += 1,
            JobOutcome::Failed { .. } => self.counters.failed += 1,
            JobOutcome::Rejected { .. } => self.counters.rejected += 1,
        }
        self.outcomes.insert(job.id, outcome);
        self.queue.release(cost);
        self.update_mode();
    }

    /// Starting from the already-popped `first`, pulls consecutive
    /// next-in-order verify jobs that share its circuit and carry no
    /// deadline. Returns a single-element vector when `first` is not
    /// batchable (prove job, deadline attached, batching disabled, or no
    /// eligible followers).
    fn collect_verify_batch(&mut self, first: QueuedJob) -> Vec<QueuedJob> {
        let batchable = |deadlines: &HashMap<JobId, Instant>, j: &QueuedJob| {
            matches!(j.spec.kind, JobKind::Verify { .. }) && !deadlines.contains_key(&j.id)
        };
        let mut batch = vec![first];
        if self.cfg.verify_batch_max < 2 || !batchable(&self.deadlines, &batch[0]) {
            return batch;
        }
        let key = content_key(B::label(), &batch[0].spec.circuit.source);
        while batch.len() < self.cfg.verify_batch_max {
            let deadlines = &self.deadlines;
            let Some(next) = self.queue.pop_if(|j| {
                batchable(deadlines, j) && content_key(B::label(), &j.spec.circuit.source) == key
            }) else {
                break;
            };
            batch.push(next);
        }
        batch
    }

    /// One pre-verify probe of a batched job: the compile/witness stages
    /// and proof parsing exactly as the per-job pipeline runs them
    /// (including chaos gates, so an injection here reproduces identically
    /// when the job falls back to the individual retry path).
    #[allow(clippy::type_complexity)]
    fn probe_verify(
        &mut self,
        job: &QueuedJob,
    ) -> Result<(B::Proof, Vec<B::Fr>, LoadTiming, u64), StageError> {
        self.pre_stage(job.id, 1, Stage::Compile)?;
        let (entry, timing) = self.cache.load_or_build(&job.spec.circuit)?;
        if entry.circuit.r1cs().num_constraints() != job.spec.circuit.constraints {
            return Err(StageError::ConstraintCountMismatch {
                declared: job.spec.circuit.constraints,
                compiled: entry.circuit.r1cs().num_constraints(),
            });
        }

        self.pre_stage(job.id, 1, Stage::Witness)?;
        let start = Instant::now();
        let to_field = |vals: &[u64]| -> Vec<B::Fr> {
            vals.iter().map(|&v| B::Fr::from_u64(v)).collect()
        };
        let witness = entry.circuit.generate_witness(
            &to_field(&job.spec.circuit.public_inputs),
            &to_field(&job.spec.circuit.private_inputs),
        )?;
        let witness_nanos = start.elapsed().as_nanos() as u64;

        self.pre_stage(job.id, 1, Stage::Verifying)?;
        let JobKind::Verify { proof } = &job.spec.kind else {
            return Err(StageError::Cancelled {
                stage: Stage::Verifying,
            });
        };
        let parsed = B::decode_proof(proof)?;
        Ok((parsed, witness.public().to_vec(), timing, witness_nanos))
    }

    /// Runs `batch` (≥ 2 same-circuit verify jobs) through the backend's
    /// combined check ([`ProverBackend::verify_batch`]; for Groth16 one
    /// random-linear-combination pairing check — `2k + 3` Miller loops
    /// instead of `4k`). RLC coefficients come from an rng seeded purely
    /// by the batch's job content, so replays are deterministic. Jobs
    /// whose pre-verify stages fail, every job of a batch whose combined
    /// check does not pass, and all jobs of backends with no batch path
    /// (`None`) fall back to the standard per-job path for individual
    /// outcomes.
    fn execute_verify_batch(&mut self, batch: Vec<QueuedJob>) {
        let mut ready = Vec::with_capacity(batch.len());
        let mut singles = Vec::new();
        for job in batch {
            match self.probe_verify(&job) {
                Ok(parts) => ready.push((job, parts)),
                Err(_) => singles.push(job),
            }
        }

        if ready.len() >= 2 {
            // All ready jobs share a circuit; fetch the shared entry once
            // (memory hit) for the key and verification key.
            match self.cache.load_or_build(&ready[0].0.spec.circuit) {
                Ok((entry, _)) => {
                    let mut seed = 0x6a7c_ba7c ^ entry.key;
                    for (job, _) in &ready {
                        seed = seed.rotate_left(21)
                            ^ prove_seed(entry.key, &job.spec.circuit)
                            ^ job.id;
                    }
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                    let items: Vec<(B::Proof, Vec<B::Fr>)> = ready
                        .iter()
                        .map(|(_, (proof, public, _, _))| (proof.clone(), public.clone()))
                        .collect();
                    let start = Instant::now();
                    let verdict = B::verify_batch(&entry.keys, &items, &mut rng);
                    let batch_nanos = start.elapsed().as_nanos() as u64;
                    if matches!(verdict, Some(true)) {
                        let per_job = batch_nanos / ready.len() as u64;
                        self.counters.verify_batches += 1;
                        self.counters.batched_verifies += ready.len() as u64;
                        for (job, (_, _, timing, witness_nanos)) in ready {
                            let key_label =
                                format!("{:016x}", content_key(B::label(), &job.spec.circuit.source));
                            self.breaker.record_success(&key_label);
                            self.metrics.record("compile", timing.compile_nanos);
                            self.metrics.record("setup", timing.setup_nanos);
                            self.metrics.record("witness", witness_nanos);
                            self.metrics.record("verify", per_job);
                            self.counters.served += 1;
                            self.outcomes.insert(
                                job.id,
                                JobOutcome::Served {
                                    proof: Vec::new(),
                                    verified: Some(true),
                                    attempts: 1,
                                },
                            );
                            self.queue.release(job.cost_bytes);
                        }
                    } else {
                        // Some member is invalid (or inputs were
                        // malformed): re-run individually so each job gets
                        // its own verdict.
                        singles.extend(ready.into_iter().map(|(job, _)| job));
                    }
                }
                Err(_) => singles.extend(ready.into_iter().map(|(job, _)| job)),
            }
        } else {
            singles.extend(ready.into_iter().map(|(job, _)| job));
        }

        for job in singles {
            self.finish_single(job);
        }
        self.update_mode();
    }

    /// Runs [`Server::step`] until the queue is empty.
    pub fn run_until_drained(&mut self) {
        while self.step() {}
    }

    /// The retry loop around one job: attempts are separated by the
    /// policy's jittered backoff, cancellation short-circuits, and the
    /// breaker records the terminal result for the circuit shape.
    fn execute(&mut self, id: JobId, spec: &JobSpec) -> JobOutcome {
        let key = content_key(B::label(), &spec.circuit.source);
        let key_label = format!("{key:016x}");
        let deadline = self.deadlines.remove(&id);
        let token = match deadline {
            Some(at) => CancelToken::with_deadline(at),
            None => CancelToken::new(),
        };
        let has_deadline = deadline.is_some();

        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.run_attempt(id, attempts, spec, &token) {
                Ok((proof, verified)) => {
                    // A result computed after the deadline is still a
                    // deadline miss: the client has moved on. The shape
                    // itself worked, so the breaker records success.
                    self.breaker.record_success(&key_label);
                    if token.is_cancelled() {
                        return self.late_outcome(has_deadline, "complete", attempts);
                    }
                    return JobOutcome::Served {
                        proof,
                        verified,
                        attempts,
                    };
                }
                Err(e) if e.is_cancellation() => {
                    let stage = match &e {
                        StageError::Cancelled { stage } => stage.name(),
                        _ => "unknown",
                    };
                    return self.late_outcome(has_deadline, stage, attempts);
                }
                Err(e) => {
                    if attempts >= self.cfg.retry.max_attempts.max(1) {
                        self.breaker.record_failure(&key_label, self.tick);
                        return JobOutcome::Failed {
                            error: e.to_string(),
                            attempts,
                        };
                    }
                    let backoff = self.cfg.retry.backoff_before(attempts + 1);
                    if let Some(remaining) = token.remaining() {
                        if remaining <= backoff {
                            // Retrying cannot finish in time; convert to
                            // a deadline miss now instead of burning CPU.
                            return self.late_outcome(has_deadline, "backoff", attempts);
                        }
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }

    fn late_outcome(&self, has_deadline: bool, stage: &str, attempts: u32) -> JobOutcome {
        if has_deadline {
            JobOutcome::DeadlineExceeded {
                stage: stage.to_string(),
                attempts,
            }
        } else {
            JobOutcome::Cancelled {
                stage: stage.to_string(),
            }
        }
    }

    /// Chaos + cancellation gate at a stage boundary.
    fn pre_stage(&self, id: JobId, attempt: u32, stage: Stage) -> Result<(), StageError> {
        if zkperf_pool::cancellation_pending() {
            return Err(StageError::Cancelled { stage });
        }
        let label = format!("serve:{id}:{attempt}:{}", stage.name());
        if let Some(mut plan) = self.cfg.chaos.plan_for(&label) {
            if plan.chance(1, 6) {
                return Err(StageError::Injected { stage });
            }
        }
        Ok(())
    }

    /// One attempt of the full pipeline, with the cancel token installed
    /// as the thread's ambient scope so kernels (and the pool tasks they
    /// spawn) observe the deadline at their own checkpoints.
    fn run_attempt(
        &mut self,
        id: JobId,
        attempt: u32,
        spec: &JobSpec,
        token: &CancelToken,
    ) -> Result<(Vec<u8>, Option<bool>), StageError> {
        let _scope = token.enter();

        self.pre_stage(id, attempt, Stage::Compile)?;
        let streamed0 = zkperf_pool::mem::streamed_bytes();
        let (entry, timing) = self.cache.load_or_build(&spec.circuit)?;
        self.metrics.record("compile", timing.compile_nanos);
        self.metrics.record("setup", timing.setup_nanos);
        // A budgeted setup streams its key material; a cache hit streams
        // nothing — either way the delta belongs to the setup stage.
        self.metrics.record_streamed(
            "setup",
            zkperf_pool::mem::streamed_bytes().saturating_sub(streamed0),
        );
        if entry.circuit.r1cs().num_constraints() != spec.circuit.constraints {
            return Err(StageError::ConstraintCountMismatch {
                declared: spec.circuit.constraints,
                compiled: entry.circuit.r1cs().num_constraints(),
            });
        }

        self.pre_stage(id, attempt, Stage::Witness)?;
        let start = Instant::now();
        let to_field = |vals: &[u64]| -> Vec<B::Fr> {
            vals.iter().map(|&v| B::Fr::from_u64(v)).collect()
        };
        let witness = entry.circuit.generate_witness(
            &to_field(&spec.circuit.public_inputs),
            &to_field(&spec.circuit.private_inputs),
        )?;
        self.metrics.record("witness", start.elapsed().as_nanos() as u64);

        match &spec.kind {
            JobKind::Prove => {
                self.pre_stage(id, attempt, Stage::Proving)?;
                let start = Instant::now();
                let streamed0 = zkperf_pool::mem::streamed_bytes();
                let mut rng = rand::rngs::StdRng::seed_from_u64(prove_seed(entry.key, &spec.circuit));
                let proof = B::prove(&entry.keys, entry.circuit.r1cs(), &witness, &mut rng)?;
                let bytes = B::encode_proof(&proof);
                self.metrics.record("prove", start.elapsed().as_nanos() as u64);
                self.metrics.record_streamed(
                    "prove",
                    zkperf_pool::mem::streamed_bytes().saturating_sub(streamed0),
                );
                Ok((bytes, None))
            }
            JobKind::Verify { proof } => {
                self.pre_stage(id, attempt, Stage::Verifying)?;
                let start = Instant::now();
                let parsed = B::decode_proof(proof)?;
                let ok = B::verify(&entry.keys, entry.circuit.r1cs(), &parsed, witness.public())?;
                self.metrics.record("verify", start.elapsed().as_nanos() as u64);
                Ok((Vec::new(), Some(ok)))
            }
        }
    }

    /// Enters draining mode and writes every still-queued job to a
    /// checkpoint container at `path`. Each drained job gets a typed
    /// [`JobOutcome::Cancelled`] outcome; a successor process can
    /// [`Server::resume_from_checkpoint`] to re-admit them. Returns the
    /// number of jobs checkpointed.
    ///
    /// # Errors
    ///
    /// [`StageError::Artifact`] when the checkpoint cannot be written;
    /// the drained jobs' outcomes are recorded either way.
    pub fn drain_to_checkpoint(&mut self, path: &Path) -> Result<usize, StageError> {
        self.mode = ServiceMode::Draining;
        let jobs = self.queue.drain_all();
        let mut body = Payload::default();
        body.u64(jobs.len() as u64);
        for job in &jobs {
            encode_job(&mut body, job);
        }
        for job in &jobs {
            self.deadlines.remove(&job.id);
            self.counters.cancelled += 1;
            self.outcomes.insert(
                job.id,
                JobOutcome::Cancelled {
                    stage: "drained-to-checkpoint".to_string(),
                },
            );
        }
        let mut container = Container::new(MAGIC_CHECKPOINT);
        container.push_section(SEC_JOBS, body.0);
        write_container_file(path, &container)?;
        Ok(jobs.len())
    }

    /// Re-admits jobs from a drain checkpoint. Deadline budgets restart
    /// from now (the original wall-clock deadlines died with the original
    /// process). Returns `(original_id, submit result)` per job, in
    /// checkpoint order.
    ///
    /// # Errors
    ///
    /// [`StageError::Artifact`] when the checkpoint is unreadable or
    /// malformed (truncation and checksum mismatches are detected by the
    /// container layer, never replayed as jobs).
    pub fn resume_from_checkpoint(
        &mut self,
        path: &Path,
    ) -> Result<ResumeOutcomes, StageError> {
        let container = read_container_file(path, MAGIC_CHECKPOINT)?;
        let bad = |detail: String| StageError::Artifact {
            path: path.display().to_string(),
            detail,
        };
        let section = container
            .section(SEC_JOBS)
            .map_err(|e| bad(e.to_string()))?;
        let mut cur = Cursor::new(section);
        let count = cur.u64().map_err(|e| bad(e.to_string()))?;
        let mut results = Vec::new();
        for _ in 0..count {
            let (old_id, spec) = decode_job(&mut cur).map_err(|e| bad(e.to_string()))?;
            let (new_id, admitted) = self.submit(spec);
            results.push((old_id, admitted.map(|()| new_id)));
        }
        Ok(results)
    }

    /// The latency/cost report over everything this server has executed.
    pub fn report(&self) -> ServeReport {
        ServeReport::new(
            &self.metrics,
            self.counters.served,
            self.counters.proofs,
            self.counters.rejected,
            self.counters.deadline_exceeded,
            self.counters.failed,
            self.counters.cancelled,
            self.counters.verify_batches,
            self.counters.batched_verifies,
            self.cfg.dollars_per_cpu_hour,
            crate::metrics::MemoryStats::capture(),
        )
    }

    /// Audits the accounting invariant: every submitted job either has
    /// exactly one recorded outcome or is still queued, and the outcome
    /// counters agree with the outcome map. Returns human-readable
    /// violations (empty = sound).
    pub fn accounting_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let queued = self.queue.queued_ids();
        for id in 1..self.next_id {
            let has_outcome = self.outcomes.contains_key(&id);
            let is_queued = queued.contains(&id);
            match (has_outcome, is_queued) {
                (true, true) => {
                    errors.push(format!("job {id} both queued and completed"))
                }
                (false, false) => {
                    errors.push(format!("job {id} accepted but unaccounted"))
                }
                _ => {}
            }
        }
        let submitted = self.counters.submitted as usize;
        if self.outcomes.len() + queued.len() != submitted {
            errors.push(format!(
                "{} outcomes + {} queued != {} submitted",
                self.outcomes.len(),
                queued.len(),
                submitted
            ));
        }
        let terminal = self.counters.served
            + self.counters.rejected
            + self.counters.deadline_exceeded
            + self.counters.failed
            + self.counters.cancelled;
        if terminal as usize != self.outcomes.len() {
            errors.push(format!(
                "counter total {terminal} != {} recorded outcomes",
                self.outcomes.len()
            ));
        }
        errors
    }
}

fn encode_job(body: &mut Payload, job: &QueuedJob) {
    body.u64(job.id);
    body.u32(u32::from(job.spec.priority.rank()));
    let deadline = job
        .spec
        .deadline
        .map_or(NO_DEADLINE, |d| d.as_nanos() as u64);
    body.u64(deadline);
    let circuit = &job.spec.circuit;
    encode_str(body, &circuit.name);
    encode_str(body, &circuit.source);
    body.u64(circuit.constraints as u64);
    encode_u64s(body, &circuit.public_inputs);
    encode_u64s(body, &circuit.private_inputs);
    match &job.spec.kind {
        JobKind::Prove => body.u32(0),
        JobKind::Verify { proof } => {
            body.u32(1);
            body.u32(proof.len() as u32);
            body.bytes(proof);
        }
    }
}

fn decode_job(cur: &mut Cursor<'_>) -> Result<(JobId, JobSpec), zkperf_io::FormatError> {
    let id = cur.u64()?;
    let priority = Priority::from_rank(cur.u32()? as u8);
    let deadline = match cur.u64()? {
        NO_DEADLINE => None,
        nanos => Some(Duration::from_nanos(nanos)),
    };
    let name = decode_str(cur)?;
    let source = decode_str(cur)?;
    let constraints = cur.u64()? as usize;
    let public_inputs = decode_u64s(cur)?;
    let private_inputs = decode_u64s(cur)?;
    let kind = match cur.u32()? {
        0 => JobKind::Prove,
        _ => {
            let len = cur.u32()? as usize;
            JobKind::Verify {
                proof: cur.take(len)?.to_vec(),
            }
        }
    };
    Ok((
        id,
        JobSpec {
            circuit: CircuitSpec {
                name,
                source,
                constraints,
                public_inputs,
                private_inputs,
            },
            kind,
            priority,
            deadline,
        },
    ))
}

fn encode_str(body: &mut Payload, s: &str) {
    body.u32(s.len() as u32);
    body.bytes(s.as_bytes());
}

fn decode_str(cur: &mut Cursor<'_>) -> Result<String, zkperf_io::FormatError> {
    let len = cur.u32()? as usize;
    let bytes = cur.take(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| zkperf_io::FormatError::Corrupt("checkpoint string is not UTF-8"))
}

fn encode_u64s(body: &mut Payload, vals: &[u64]) {
    body.u32(vals.len() as u32);
    for &v in vals {
        body.u64(v);
    }
}

fn decode_u64s(cur: &mut Cursor<'_>) -> Result<Vec<u64>, zkperf_io::FormatError> {
    let len = cur.u32()? as usize;
    (0..len).map(|_| cur.u64()).collect()
}

/// The serial reference path: the same compile/setup/witness/prove
/// pipeline and the same derived randomness as [`Server`], with no queue,
/// retries, or chaos in the way. Accepted server jobs must byte-match
/// this output — the determinism oracle used by the overload test and the
/// smoke tier.
///
/// # Errors
///
/// The same [`StageError`]s the server-side pipeline produces.
pub fn prove_serial<B: ProverBackend>(
    cache: &mut ArtifactCache<B>,
    spec: &CircuitSpec,
) -> Result<Vec<u8>, StageError> {
    let (entry, _) = cache.load_or_build(spec)?;
    let to_field = |vals: &[u64]| -> Vec<B::Fr> {
        vals.iter().map(|&v| B::Fr::from_u64(v)).collect()
    };
    let witness = entry
        .circuit
        .generate_witness(&to_field(&spec.public_inputs), &to_field(&spec.private_inputs))?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(prove_seed(entry.key, spec));
    let proof = B::prove(&entry.keys, entry.circuit.r1cs(), &witness, &mut rng)?;
    Ok(B::encode_proof(&proof))
}
