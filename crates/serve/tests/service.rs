//! End-to-end service tests: deterministic overload behaviour, deadline
//! accounting, circuit breaking, degradation, and checkpoint/resume.
//!
//! Everything here runs the server's synchronous loop, so outcomes are
//! exact — no sleeps, no races.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use zkperf_core::Groth16Backend;
use zkperf_ec::Bn254;
use zkperf_serve::{
    prove_serial, ArtifactCache, CircuitSpec, JobKind, JobOutcome, JobSpec, Priority,
    RejectReason, Server, ServerConfig, ServiceMode,
};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zkperf-serve-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn prove_job(constraints: usize, x: u64, priority: Priority) -> JobSpec {
    JobSpec {
        circuit: CircuitSpec::exponentiate(constraints, x),
        kind: JobKind::Prove,
        priority,
        deadline: None,
    }
}

/// Satellite 3: fill the admission queue and check the exact
/// reject-with-reason ordering (lowest priority shed first), then
/// byte-compare every accepted job's proof against the serial path.
#[test]
fn overload_sheds_lowest_priority_first_and_stays_deterministic() {
    let dir = tmpdir("overload");
    let mut cfg = ServerConfig::default();
    cfg.admission.max_depth = 3;
    let mut server: Server<Groth16Backend<Bn254>> = Server::open(dir.join("server"), cfg).unwrap();

    // Five Low arrivals against a depth-3 queue: 1..3 admitted, 4..5
    // rejected outright (nothing to shed at equal priority).
    let mut ids = Vec::new();
    for x in 0..5u64 {
        let (id, res) = server.submit(prove_job(8, 2 + x, Priority::Low));
        ids.push(id);
        if x < 3 {
            assert!(res.is_ok(), "job {x} should be admitted");
        } else {
            assert!(
                matches!(res, Err(RejectReason::QueueFull { depth: 3, limit: 3 })),
                "job {x}: {res:?}"
            );
        }
    }
    // A Normal arrival displaces the youngest Low (the third submission).
    let (norm_id, res) = server.submit(prove_job(8, 7, Priority::Normal));
    assert!(res.is_ok());
    assert_eq!(
        server.outcome(ids[2]),
        Some(&JobOutcome::Rejected {
            reason: RejectReason::Shed { by: norm_id }
        })
    );
    // Two High arrivals displace the remaining Lows, youngest first.
    let (high1, res) = server.submit(prove_job(8, 8, Priority::High));
    assert!(res.is_ok());
    assert_eq!(
        server.outcome(ids[1]),
        Some(&JobOutcome::Rejected {
            reason: RejectReason::Shed { by: high1 }
        })
    );
    let (high2, res) = server.submit(prove_job(8, 9, Priority::High));
    assert!(res.is_ok());
    assert_eq!(
        server.outcome(ids[0]),
        Some(&JobOutcome::Rejected {
            reason: RejectReason::Shed { by: high2 }
        })
    );
    // Normal cannot displace Normal/High.
    let (_, res) = server.submit(prove_job(8, 10, Priority::Normal));
    assert!(matches!(res, Err(RejectReason::QueueFull { .. })));

    // Execution order: High before Normal, FIFO within class.
    assert_eq!(server.queued_ids(), vec![high1, high2, norm_id]);
    server.run_until_drained();
    assert!(server.accounting_errors().is_empty());

    // Byte-identical to the serial reference pipeline.
    let mut serial: ArtifactCache<Groth16Backend<Bn254>> = ArtifactCache::open(dir.join("serial")).unwrap();
    for (id, x) in [(norm_id, 7u64), (high1, 8), (high2, 9)] {
        let spec = CircuitSpec::exponentiate(8, x);
        let expected = prove_serial(&mut serial, &spec).unwrap();
        match server.outcome(id) {
            Some(JobOutcome::Served { proof, attempts: 1, .. }) => {
                assert_eq!(proof, &expected, "job {id} proof differs from serial path")
            }
            other => panic!("job {id}: {other:?}"),
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// An impossible deadline produces a typed `DeadlineExceeded` at a stage
/// boundary — never a panic, never an untyped error.
#[test]
fn expired_deadline_is_a_typed_outcome() {
    let dir = tmpdir("deadline");
    let mut server: Server<Groth16Backend<Bn254>> =
        Server::open(dir.join("server"), ServerConfig::default()).unwrap();
    let (id, res) = server.submit(JobSpec {
        circuit: CircuitSpec::exponentiate(8, 3),
        kind: JobKind::Prove,
        priority: Priority::Normal,
        deadline: Some(Duration::ZERO),
    });
    assert!(res.is_ok(), "admission happens before the deadline check");
    server.run_until_drained();
    match server.outcome(id) {
        Some(JobOutcome::DeadlineExceeded { stage, .. }) => {
            assert_eq!(stage, "compile", "caught at the first stage boundary")
        }
        other => panic!("{other:?}"),
    }
    assert!(server.accounting_errors().is_empty());
    let _ = fs::remove_dir_all(&dir);
}

/// A shape that always fails trips its breaker after the threshold;
/// other shapes are unaffected; the breaker half-opens after cooldown.
#[test]
fn failing_circuit_shape_is_quarantined() {
    let dir = tmpdir("breaker");
    let mut cfg = ServerConfig::default();
    cfg.retry.max_attempts = 1;
    cfg.retry.base_backoff = Duration::ZERO;
    cfg.breaker_threshold = 2;
    cfg.breaker_cooldown_ticks = 3;
    let mut server: Server<Groth16Backend<Bn254>> = Server::open(dir.join("server"), cfg).unwrap();

    let bad = JobSpec {
        circuit: CircuitSpec {
            name: "bad".into(),
            source: "circuit bad { this does not parse".into(),
            constraints: 1,
            public_inputs: vec![],
            private_inputs: vec![],
        },
        kind: JobKind::Prove,
        priority: Priority::Normal,
        deadline: None,
    };

    // Two terminal failures open the breaker.
    for _ in 0..2 {
        let (id, res) = server.submit(bad.clone());
        assert!(res.is_ok());
        server.run_until_drained();
        assert!(matches!(
            server.outcome(id),
            Some(JobOutcome::Failed { attempts: 1, .. })
        ));
    }
    // Third submission is rejected at admission with the typed reason.
    let (_, res) = server.submit(bad.clone());
    assert!(
        matches!(res, Err(RejectReason::CircuitOpen { until_tick: 5, .. })),
        "{res:?}"
    );
    // A healthy shape sails through while the bad one is quarantined.
    let (good_id, res) = server.submit(prove_job(8, 3, Priority::Normal));
    assert!(res.is_ok());
    server.run_until_drained();
    assert!(server.outcome(good_id).unwrap().is_served());
    // Tick 5 reached: the breaker half-opens and admits a probe, whose
    // failure re-opens it immediately.
    let (probe_id, res) = server.submit(bad.clone());
    assert!(res.is_ok(), "half-open admits one probe: {res:?}");
    server.run_until_drained();
    assert!(matches!(
        server.outcome(probe_id),
        Some(JobOutcome::Failed { .. })
    ));
    let (_, res) = server.submit(bad);
    assert!(matches!(res, Err(RejectReason::CircuitOpen { .. })));
    assert!(server.accounting_errors().is_empty());
    let _ = fs::remove_dir_all(&dir);
}

/// Queue pressure degrades the service to verify-only; draining restores
/// normal operation.
#[test]
fn overload_degrades_to_verify_only_and_recovers() {
    let dir = tmpdir("degrade");
    let cfg = ServerConfig {
        verify_only_depth: 2,
        ..ServerConfig::default()
    };
    let mut server: Server<Groth16Backend<Bn254>> = Server::open(dir.join("server"), cfg).unwrap();

    let (first, res) = server.submit(prove_job(8, 3, Priority::Normal));
    assert!(res.is_ok());
    assert_eq!(server.mode(), ServiceMode::Normal);
    let (_, res) = server.submit(prove_job(8, 4, Priority::Normal));
    assert!(res.is_ok());
    assert_eq!(server.mode(), ServiceMode::VerifyOnly);

    // Prove traffic is refused while degraded …
    let (_, res) = server.submit(prove_job(8, 5, Priority::High));
    assert!(matches!(res, Err(RejectReason::VerifyOnly)));

    // … but verify traffic still lands. Serve the first job to get real
    // proof bytes, which immediately relieves pressure too.
    assert!(server.step());
    let proof = match server.outcome(first) {
        Some(JobOutcome::Served { proof, .. }) => proof.clone(),
        other => panic!("{other:?}"),
    };
    let (verify_id, res) = server.submit(JobSpec {
        circuit: CircuitSpec::exponentiate(8, 3),
        kind: JobKind::Verify { proof },
        priority: Priority::High,
        deadline: None,
    });
    assert!(res.is_ok(), "verify admitted while degraded: {res:?}");

    server.run_until_drained();
    assert_eq!(server.mode(), ServiceMode::Normal, "recovered after drain");
    assert!(matches!(
        server.outcome(verify_id),
        Some(JobOutcome::Served { verified: Some(true), .. })
    ));
    assert!(server.accounting_errors().is_empty());
    let _ = fs::remove_dir_all(&dir);
}

/// Tentpole satellite: queued same-circuit verify jobs drain through one
/// combined pairing check, a poisoned batch falls back to per-job
/// verdicts, and the accounting invariant holds either way.
#[test]
fn verify_jobs_batch_into_one_pairing_check() {
    let dir = tmpdir("vbatch");
    let mut server: Server<Groth16Backend<Bn254>> =
        Server::open(dir.join("server"), ServerConfig::default()).unwrap();

    // Produce real proof bytes for x = 3 and x = 4.
    let (p3, res) = server.submit(prove_job(8, 3, Priority::Normal));
    assert!(res.is_ok());
    let (p4, res) = server.submit(prove_job(8, 4, Priority::Normal));
    assert!(res.is_ok());
    server.run_until_drained();
    let proof_of = |server: &Server<Groth16Backend<Bn254>>, id| match server.outcome(id) {
        Some(JobOutcome::Served { proof, .. }) => proof.clone(),
        other => panic!("{other:?}"),
    };
    let proof3 = proof_of(&server, p3);
    let proof4 = proof_of(&server, p4);

    let verify_job = |x: u64, proof: Vec<u8>| JobSpec {
        circuit: CircuitSpec::exponentiate(8, x),
        kind: JobKind::Verify { proof },
        priority: Priority::Normal,
        deadline: None,
    };

    // Four consistent verify jobs of the same circuit shape: one batch.
    let mut ids = Vec::new();
    for (x, proof) in [(3, &proof3), (4, &proof4), (3, &proof3), (4, &proof4)] {
        let (id, res) = server.submit(verify_job(x, proof.clone()));
        assert!(res.is_ok());
        ids.push(id);
    }
    server.run_until_drained();
    for id in &ids {
        assert!(
            matches!(
                server.outcome(*id),
                Some(JobOutcome::Served { verified: Some(true), attempts: 1, .. })
            ),
            "job {id}: {:?}",
            server.outcome(*id)
        );
    }
    let report = server.report();
    assert_eq!(report.verify_batches, 1, "one combined check");
    assert_eq!(report.batched_verifies, 4, "all four jobs rode it");
    assert_eq!(report.miller_loops_saved(), 2 * 4 - 3);
    assert!(report.to_string().contains("batching: 4 verifies in 1 combined checks"));

    // Poison one member: proof for x = 3 against the statement x = 5. The
    // combined check fails and every member falls back to an individual
    // verdict — true for the honest jobs, false for the mismatch.
    let (good, res) = server.submit(verify_job(3, proof3.clone()));
    assert!(res.is_ok());
    let (bad, res) = server.submit(verify_job(5, proof3.clone()));
    assert!(res.is_ok());
    server.run_until_drained();
    assert!(matches!(
        server.outcome(good),
        Some(JobOutcome::Served { verified: Some(true), .. })
    ));
    assert!(matches!(
        server.outcome(bad),
        Some(JobOutcome::Served { verified: Some(false), .. })
    ));
    let report = server.report();
    assert_eq!(report.verify_batches, 1, "poisoned batch fell back");
    assert!(server.accounting_errors().is_empty());

    // Batching disabled: same traffic, no combined checks.
    let cfg = ServerConfig {
        verify_batch_max: 1,
        ..ServerConfig::default()
    };
    let mut single: Server<Groth16Backend<Bn254>> = Server::open(dir.join("single"), cfg).unwrap();
    for (x, proof) in [(3, &proof3), (4, &proof4)] {
        let (_, res) = single.submit(verify_job(x, proof.clone()));
        assert!(res.is_ok());
    }
    single.run_until_drained();
    let report = single.report();
    assert_eq!(report.verify_batches, 0);
    assert_eq!(report.batched_verifies, 0);
    assert!(single.accounting_errors().is_empty());

    let _ = fs::remove_dir_all(&dir);
}

/// Shutdown drains queued jobs to a checksummed checkpoint; a successor
/// server resumes them and produces byte-identical proofs.
#[test]
fn drain_checkpoint_resume_round_trip() {
    let dir = tmpdir("checkpoint");
    let ckpt = dir.join("drain.zksv");
    let specs = [(16usize, 5u64), (8, 6)];

    let mut server: Server<Groth16Backend<Bn254>> =
        Server::open(dir.join("server"), ServerConfig::default()).unwrap();
    let mut ids = Vec::new();
    for &(constraints, x) in &specs {
        let (id, res) = server.submit(prove_job(constraints, x, Priority::Normal));
        assert!(res.is_ok());
        ids.push(id);
    }
    let drained = server.drain_to_checkpoint(&ckpt).unwrap();
    assert_eq!(drained, 2);
    for id in &ids {
        assert!(matches!(
            server.outcome(*id),
            Some(JobOutcome::Cancelled { .. })
        ));
    }
    // Draining refuses new work.
    let (_, res) = server.submit(prove_job(8, 9, Priority::High));
    assert!(matches!(res, Err(RejectReason::Draining)));
    assert!(server.accounting_errors().is_empty());

    // A successor over the same artifact cache resumes the queue.
    let mut successor: Server<Groth16Backend<Bn254>> =
        Server::open(dir.join("server"), ServerConfig::default()).unwrap();
    let resumed = successor.resume_from_checkpoint(&ckpt).unwrap();
    assert_eq!(resumed.len(), 2);
    assert!(resumed.iter().all(|(_, r)| r.is_ok()));
    successor.run_until_drained();

    let mut serial: ArtifactCache<Groth16Backend<Bn254>> = ArtifactCache::open(dir.join("serial")).unwrap();
    for (i, &(constraints, x)) in specs.iter().enumerate() {
        let new_id = *resumed[i].1.as_ref().unwrap();
        let expected = prove_serial(&mut serial, &CircuitSpec::exponentiate(constraints, x)).unwrap();
        match successor.outcome(new_id) {
            Some(JobOutcome::Served { proof, .. }) => assert_eq!(
                proof, &expected,
                "resumed job {new_id} proof differs from serial path"
            ),
            other => panic!("{other:?}"),
        }
    }
    assert!(successor.accounting_errors().is_empty());

    // A truncated checkpoint is typed corruption, never replayed.
    let bytes = fs::read(&ckpt).unwrap();
    fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();
    let mut another: Server<Groth16Backend<Bn254>> =
        Server::open(dir.join("server2"), ServerConfig::default()).unwrap();
    let err = another.resume_from_checkpoint(&ckpt).unwrap_err();
    assert!(
        matches!(err, zkperf_core::StageError::Artifact { .. }),
        "{err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}
