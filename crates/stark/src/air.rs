//! The R1CS → AIR mapping: execution-trace columns and the public-input
//! boundary polynomials.
//!
//! The suite's front end produces R1CS, so the "AIR" here is the direct
//! tabular reading of it: row `i` of the trace holds the three inner
//! products `aᵢ = ⟨Aᵢ, w⟩`, `bᵢ = ⟨Bᵢ, w⟩`, `cᵢ = ⟨Cᵢ, w⟩` of constraint
//! `i`, and a fourth column `p` laying the `k` public wires out over the
//! first `k` rows. Two constraint families cover the system:
//!
//! 1. `a(x)·b(x) − c(x)` vanishes on the whole trace domain `H`
//!    (quotient by `Z_H = xⁿ − 1`);
//! 2. `p(x) − I_pub(x)` vanishes on the first `k` points of `H`, where
//!    `I_pub` interpolates the claimed public inputs (quotient by
//!    `Z_pub = Π_{i<k}(x − ωⁱ)`) — the binding that makes tampered
//!    public inputs a rejected mutation class.
//!
//! Rows past the last constraint pad with the zero combination
//! (`0·0 − 0 = 0`), so padding never weakens constraint 1.

use zkperf_circuit::R1cs;
use zkperf_ff::{Field, Goldilocks, PrimeField};
use zkperf_poly::Radix2Domain;
use zkperf_pool as pool;
use zkperf_trace as trace;

use crate::error::StarkError;

type F = Goldilocks;

/// Parallelization grain for per-row LC evaluation.
const GRAIN: usize = 128;

/// The shape of the trace: domain size and public-wire count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceLayout {
    /// Trace-domain size: the smallest power of two covering both the
    /// constraint rows and the public-wire rows.
    pub n: usize,
    /// Number of public wires (`1 + outputs + public inputs`).
    pub k: usize,
}

impl TraceLayout {
    /// The layout induced by a circuit.
    pub fn of<Fx: PrimeField>(r1cs: &R1cs<Fx>) -> Self {
        let k = r1cs.num_public_wires();
        let n = r1cs.num_constraints().max(k).max(1).next_power_of_two();
        TraceLayout { n, k }
    }
}

/// The four trace columns, evaluated over the trace domain `H`.
#[derive(Debug, Clone)]
pub struct TraceColumns {
    /// The layout the columns were built for.
    pub layout: TraceLayout,
    /// `⟨Aᵢ, w⟩` per row.
    pub a: Vec<F>,
    /// `⟨Bᵢ, w⟩` per row.
    pub b: Vec<F>,
    /// `⟨Cᵢ, w⟩` per row.
    pub c: Vec<F>,
    /// Public wires over the first `k` rows, zero elsewhere.
    pub p: Vec<F>,
}

/// Evaluates every constraint row of `r1cs` on `witness`.
///
/// # Errors
///
/// [`StarkError::WitnessLength`] when the witness does not cover the
/// circuit's wires. An *unsatisfying* witness is accepted — the resulting
/// proof simply fails verification, matching the pairing backends, where
/// soundness (not the prover) polices satisfaction.
pub fn build_trace(r1cs: &R1cs<F>, witness: &[F]) -> Result<TraceColumns, StarkError> {
    if witness.len() != r1cs.num_wires() {
        return Err(StarkError::WitnessLength {
            expected: r1cs.num_wires(),
            got: witness.len(),
        });
    }
    let _g = trace::region_profile("arithmetize");
    let layout = TraceLayout::of(r1cs);
    let rows = r1cs.num_constraints();
    let mut a = vec![F::zero(); layout.n];
    let mut b = vec![F::zero(); layout.n];
    let mut c = vec![F::zero(); layout.n];
    let constraints = r1cs.constraints();
    for (col, pick) in [&mut a, &mut b, &mut c].into_iter().zip([0usize, 1, 2]) {
        pool::parallel_fill(&mut col[..rows], GRAIN, |i| {
            let cs = &constraints[i];
            match pick {
                0 => cs.a.evaluate(witness),
                1 => cs.b.evaluate(witness),
                _ => cs.c.evaluate(witness),
            }
        });
    }
    let mut p = vec![F::zero(); layout.n];
    p[..layout.k].copy_from_slice(&witness[..layout.k]);
    Ok(TraceColumns { layout, a, b, c, p })
}

/// Coefficients of `I_pub`, the degree `< k` interpolation of `public`
/// over the first `k` trace-domain points (O(k²) Lagrange; `k` is a
/// handful for every circuit in the suite).
pub fn public_interpolant(domain_h: &Radix2Domain<F>, public: &[F]) -> Vec<F> {
    let k = public.len();
    let points: Vec<F> = (0..k).map(|i| domain_h.element(i)).collect();
    let mut coeffs = vec![F::zero(); k.max(1)];
    for (j, (xj, yj)) in points.iter().zip(public).enumerate() {
        // ℓ_j(x) = Π_{m≠j} (x − x_m) / (x_j − x_m), accumulated as a
        // coefficient vector.
        let mut basis = vec![F::one()];
        let mut denom = F::one();
        for (m, xm) in points.iter().enumerate() {
            if m == j {
                continue;
            }
            basis = poly_mul_linear(&basis, -*xm);
            denom *= *xj - *xm;
        }
        let scale = *yj * denom.inverse().expect("interpolation points are distinct");
        for (slot, cb) in coeffs.iter_mut().zip(&basis) {
            *slot += *cb * scale;
        }
    }
    coeffs
}

/// Coefficients of `Z_pub = Π_{i<k}(x − ωⁱ)` (degree `k`).
pub fn public_vanishing(domain_h: &Radix2Domain<F>, k: usize) -> Vec<F> {
    let mut acc = vec![F::one()];
    for i in 0..k {
        acc = poly_mul_linear(&acc, -domain_h.element(i));
    }
    acc
}

/// Multiplies a coefficient vector by `(x + c)`.
fn poly_mul_linear(poly: &[F], c: F) -> Vec<F> {
    let mut out = vec![F::zero(); poly.len() + 1];
    for (i, &pi) in poly.iter().enumerate() {
        out[i] += pi * c;
        out[i + 1] += pi;
    }
    out
}

/// Horner evaluation of a coefficient vector.
pub fn eval_poly(coeffs: &[F], x: F) -> F {
    let mut acc = F::zero();
    for &ci in coeffs.iter().rev() {
        acc = acc * x + ci;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::exponentiate;

    #[test]
    fn trace_rows_satisfy_the_r1cs_rowwise() {
        let circuit = exponentiate::<F>(8);
        let w = circuit.generate_witness(&[F::from_u64(3)], &[]).unwrap();
        let cols = build_trace(circuit.r1cs(), w.full()).unwrap();
        assert!(cols.layout.n.is_power_of_two());
        for i in 0..cols.layout.n {
            assert_eq!(cols.a[i] * cols.b[i], cols.c[i], "row {i}");
        }
        assert_eq!(cols.p[0], F::one(), "wire 0 is the constant 1");
        assert_eq!(&cols.p[..cols.layout.k], w.public());
    }

    #[test]
    fn wrong_witness_length_is_typed() {
        let circuit = exponentiate::<F>(4);
        let err = build_trace(circuit.r1cs(), &[F::one()]).unwrap_err();
        assert!(matches!(err, StarkError::WitnessLength { .. }));
    }

    #[test]
    fn interpolant_matches_on_domain_points_and_vanishing_vanishes() {
        let domain = Radix2Domain::<F>::new(16).unwrap();
        let public = [F::from_u64(1), F::from_u64(42), F::from_u64(7)];
        let interp = public_interpolant(&domain, &public);
        let vanish = public_vanishing(&domain, public.len());
        assert_eq!(interp.len(), 3);
        assert_eq!(vanish.len(), 4);
        for (i, want) in public.iter().enumerate() {
            let x = domain.element(i);
            assert_eq!(eval_poly(&interp, x), *want);
            assert!(eval_poly(&vanish, x).is_zero());
        }
        // Off the constrained points, Z_pub must not vanish.
        assert!(!eval_poly(&vanish, domain.element(7)).is_zero());
    }

    #[test]
    fn zero_constraint_layout_still_covers_public_wires() {
        // A source with no constraints still has wire 0; the layout pads
        // to a non-empty power of two.
        let layout = TraceLayout {
            n: 1usize.next_power_of_two(),
            k: 1,
        };
        assert_eq!(layout.n, 1);
        let domain = Radix2Domain::<F>::new(1).unwrap();
        assert_eq!(domain.size(), 1);
        assert!(domain.element(0).is_one());
    }
}
