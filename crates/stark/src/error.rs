//! The typed error surface of the transparent backend.
//!
//! Every rejection a mutated proof can trigger has its own variant, so
//! the soundness-negative battery can assert not just *that* a corruption
//! was caught but *where* — a tampered Merkle path must die in the path
//! check, not fall through to a generic failure.

use std::fmt;

/// Everything that can go wrong proving or verifying a STARK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StarkError {
    /// The witness vector does not match the circuit's wire count.
    WitnessLength {
        /// Wires the R1CS declares.
        expected: usize,
        /// Elements supplied.
        got: usize,
    },
    /// The padded trace (times blowup) exceeds the field's 2-adic domain.
    DomainTooLarge {
        /// Evaluation-domain size that was requested.
        needed: usize,
    },
    /// The ambient [`zkperf_pool::CancelToken`] fired mid-stage.
    Cancelled,
    /// A proof header field disagrees with the verifier's own parameters
    /// (trace length, public-wire count, blowup, query count).
    ParamsMismatch {
        /// Which header field diverged.
        what: &'static str,
        /// The verifier's value.
        expected: u64,
        /// The proof's value.
        got: u64,
    },
    /// The proof body has the wrong shape (truncated query set, missing
    /// FRI layer, path of the wrong length, …).
    Malformed {
        /// Which structural invariant failed.
        what: &'static str,
    },
    /// The proof bytes failed to decode.
    Decode {
        /// Which field of the encoding was unreadable.
        what: &'static str,
    },
    /// A Merkle authentication path does not lead to the committed root.
    MerklePath {
        /// Which tree ("trace", "quotient" or "fri").
        tree: &'static str,
        /// Query round that failed.
        query: usize,
    },
    /// The out-of-domain evaluations do not satisfy the constraint
    /// identity at the DEEP point — the committed trace is unsatisfied or
    /// the evaluations were tampered with.
    OodInconsistent,
    /// An opened quotient value disagrees with the constraint formula at
    /// its own domain point.
    QuotientMismatch {
        /// Query round that failed.
        query: usize,
    },
    /// The DEEP composition recomputed from the openings disagrees with
    /// the committed first FRI layer.
    DeepMismatch {
        /// Query round that failed.
        query: usize,
    },
    /// Two consecutive FRI layers are inconsistent under the fold.
    FriFold {
        /// Layer whose folded value diverged.
        layer: usize,
        /// Query round that failed.
        query: usize,
    },
    /// The last fold disagrees with the final polynomial sent in the
    /// clear.
    FriFinal {
        /// Query round that failed.
        query: usize,
    },
}

impl fmt::Display for StarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StarkError::WitnessLength { expected, got } => {
                write!(f, "witness has {got} elements, circuit has {expected} wires")
            }
            StarkError::DomainTooLarge { needed } => {
                write!(f, "evaluation domain of {needed} exceeds the 2-adic subgroup")
            }
            StarkError::Cancelled => write!(f, "cancelled by the ambient CancelToken"),
            StarkError::ParamsMismatch { what, expected, got } => {
                write!(f, "proof header {what} is {got}, verifier expects {expected}")
            }
            StarkError::Malformed { what } => write!(f, "malformed proof: {what}"),
            StarkError::Decode { what } => write!(f, "undecodable proof bytes: {what}"),
            StarkError::MerklePath { tree, query } => {
                write!(f, "{tree} Merkle path rejected at query {query}")
            }
            StarkError::OodInconsistent => {
                write!(f, "out-of-domain evaluations violate the constraint identity")
            }
            StarkError::QuotientMismatch { query } => {
                write!(f, "opened quotient violates the constraint identity at query {query}")
            }
            StarkError::DeepMismatch { query } => {
                write!(f, "DEEP composition mismatch at query {query}")
            }
            StarkError::FriFold { layer, query } => {
                write!(f, "FRI fold inconsistent at layer {layer}, query {query}")
            }
            StarkError::FriFinal { query } => {
                write!(f, "final FRI polynomial mismatch at query {query}")
            }
        }
    }
}

impl StarkError {
    /// Whether this error is a *soundness rejection* — the proof (or its
    /// claimed statement) was examined and refused — as opposed to an
    /// environmental failure (bad witness shape, oversized domain,
    /// cancellation) where no verdict about the proof was reached.
    ///
    /// Backend-generic callers map rejections to `verified = false` and
    /// propagate everything else as an error, matching the pairing
    /// backends' accept/reject surface.
    pub fn is_rejection(&self) -> bool {
        !matches!(
            self,
            StarkError::WitnessLength { .. }
                | StarkError::DomainTooLarge { .. }
                | StarkError::Cancelled
        )
    }
}

impl std::error::Error for StarkError {}
