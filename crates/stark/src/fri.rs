//! The FRI low-degree test: commit/fold on the prover, the reusable fold
//! primitive, and the layer geometry both sides must agree on.
//!
//! Layer 0 is the DEEP composition evaluated on the LDE coset `s·⟨ω⟩`.
//! Each fold halves the domain (`x ↦ x²`, so layer `l` lives on
//! `s^{2^l}·⟨ω^{2^l}⟩`) and halves the degree bound: writing the layer
//! polynomial as `f(x) = e(x²) + x·o(x²)`, the folded polynomial is
//! `e + β·o`, evaluated pointwise from the `(x, −x)` value pair as
//!
//! ```text
//! f'(x²) = (f(x) + f(−x))/2 + β·(f(x) − f(−x))/(2x).
//! ```
//!
//! Folding stops at degree bound [`FINAL_POLY_MAX_DEGREE`]; the surviving
//! polynomial is shipped as coefficients and spot-checked at every query.

use zkperf_ff::{batch_inverse, Field, Goldilocks};
use zkperf_pool as pool;
use zkperf_trace as trace;

use crate::merkle::MerkleTree;
use crate::params::FINAL_POLY_MAX_DEGREE;
use crate::transcript::Transcript;

type F = Goldilocks;

/// Parallelization grain for folds.
const GRAIN: usize = 256;

/// The multiplicative geometry of one FRI layer.
#[derive(Debug, Clone, Copy)]
pub struct LayerDomain {
    /// Coset shift `s^{2^l}`.
    pub shift: F,
    /// Subgroup generator `ω^{2^l}`.
    pub omega: F,
    /// Layer size `N / 2^l`.
    pub size: usize,
}

impl LayerDomain {
    /// The `i`-th point `shift·ωⁱ`.
    pub fn element(&self, i: usize) -> F {
        self.shift * self.omega.pow_u64(i as u64)
    }

    /// The geometry after one fold: points squared, size halved.
    pub fn fold(&self) -> LayerDomain {
        LayerDomain {
            shift: self.shift.square(),
            omega: self.omega.square(),
            size: self.size / 2,
        }
    }
}

/// Number of folds for an initial degree bound `n`: halve until the bound
/// is `≤ FINAL_POLY_MAX_DEGREE`.
pub fn num_folds(n: usize) -> usize {
    let mut bound = n.max(1);
    let mut folds = 0;
    while bound > FINAL_POLY_MAX_DEGREE {
        bound /= 2;
        folds += 1;
    }
    folds
}

/// Degree bound of the final polynomial for an initial bound `n`.
pub fn final_degree_bound(n: usize) -> usize {
    n.max(1) >> num_folds(n)
}

/// One committed FRI layer on the prover side.
#[derive(Debug, Clone)]
pub struct FriLayer {
    /// The layer codeword.
    pub values: Vec<F>,
    /// Its Merkle commitment (leaf `i` commits `values[i]`).
    pub tree: MerkleTree,
    /// The layer's evaluation domain.
    pub domain: LayerDomain,
}

/// The prover's full FRI state: committed layers plus the final
/// polynomial in coefficient form.
#[derive(Debug, Clone)]
pub struct FriProver {
    /// Committed layers, `layers[0]` being the DEEP composition itself.
    pub layers: Vec<FriLayer>,
    /// Per-fold challenges `β_l` (one per layer, drawn after absorbing
    /// that layer's root).
    pub betas: Vec<F>,
    /// Coefficients of the final polynomial (length
    /// [`final_degree_bound`] of the initial bound).
    pub final_coeffs: Vec<F>,
}

/// Folds one codeword by two with challenge `beta`.
///
/// Exposed for the differential oracle (`fuzz_lite --only stark_fri`) and
/// the `fri_fold_2e18` bench kernel; the chunk decomposition depends only
/// on the length, so the output is thread-count invariant.
pub fn fold_layer(values: &[F], beta: F, domain: &LayerDomain) -> Vec<F> {
    let half = values.len() / 2;
    debug_assert_eq!(values.len(), domain.size);
    debug_assert!(half > 0, "cannot fold a single point");
    let two_inv = F::from_u64(2).inverse().expect("2 is invertible");
    let shift_inv = domain.shift.inverse().expect("shift is non-zero");
    let omega_inv = domain.omega.inverse().expect("omega is non-zero");
    let mut out = vec![F::zero(); half];
    pool::parallel_chunks_mut(&mut out, GRAIN, |ci, chunk| {
        let start = ci * GRAIN;
        // x_i⁻¹ = s⁻¹·ω⁻ⁱ, advanced incrementally within the chunk.
        let mut x_inv = shift_inv * omega_inv.pow_u64(start as u64);
        for (j, slot) in chunk.iter_mut().enumerate() {
            let i = start + j;
            let lo = values[i];
            let hi = values[i + half];
            *slot = two_inv * (lo + hi + beta * (lo - hi) * x_inv);
            x_inv *= omega_inv;
        }
    });
    out
}

/// Runs the commit phase: commits layer 0, then alternates
/// absorb-root / draw-β / fold until the degree bound reaches the final
/// threshold, and closes with the coefficients of the last codeword.
///
/// `initial_bound` is the degree bound of `values` (the trace length
/// `n`); `domain0` is the LDE coset the codeword lives on.
pub fn fri_commit(
    values: Vec<F>,
    initial_bound: usize,
    domain0: LayerDomain,
    transcript: &mut Transcript,
) -> FriProver {
    let _g = trace::region_profile("fri");
    let folds = num_folds(initial_bound);
    let mut layers = Vec::with_capacity(folds);
    let mut betas = Vec::with_capacity(folds);
    let mut current = values;
    let mut domain = domain0;
    for _ in 0..folds {
        let tree = MerkleTree::from_rows(current.len(), |i| vec![current[i]]);
        transcript.absorb(tree.root());
        let beta = transcript.challenge();
        betas.push(beta);
        let next = fold_layer(&current, beta, &domain);
        layers.push(FriLayer {
            values: current,
            tree,
            domain,
        });
        current = next;
        domain = domain.fold();
    }
    // When the initial bound is already at the threshold there are no
    // committed layers at all: the codeword is sent as coefficients and
    // the verifier checks it pointwise against its own DEEP composition.
    let final_coeffs =
        codeword_coefficients(&current, domain, final_degree_bound(initial_bound));
    transcript.absorb_slice(&final_coeffs);
    FriProver {
        layers,
        betas,
        final_coeffs,
    }
}

/// Interpolates a codeword on `shift·⟨ω⟩` and returns its first `keep`
/// coefficients (the rest are zero for any honest codeword).
///
/// Works on any coset: IFFT on the subgroup yields `g(x) = f(shift·x)`,
/// then coefficient `i` is unscaled by `shift⁻ⁱ`.
fn codeword_coefficients(values: &[F], domain: LayerDomain, keep: usize) -> Vec<F> {
    let fft = zkperf_poly::Radix2Domain::<F>::new(values.len())
        .expect("layer sizes stay inside the 2-adic subgroup");
    debug_assert_eq!(fft.group_gen(), domain.omega, "canonical 2-adic roots agree");
    let mut coeffs = values.to_vec();
    fft.ifft_in_place(&mut coeffs);
    let shift_inv = domain.shift.inverse().expect("shift is non-zero");
    let mut scale = F::one();
    for c in coeffs.iter_mut() {
        *c *= scale;
        scale *= shift_inv;
    }
    coeffs.truncate(keep.max(1).min(values.len()));
    coeffs
}

/// Verifier-side fold of one opened `(lo, hi)` pair at pair-index `i` of
/// `domain`.
pub fn fold_pair(lo: F, hi: F, beta: F, domain: &LayerDomain, i: usize) -> F {
    let two_inv = F::from_u64(2).inverse().expect("2 is invertible");
    let x_inv = domain
        .element(i)
        .inverse()
        .expect("domain points are non-zero");
    two_inv * (lo + hi + beta * (lo - hi) * x_inv)
}

/// Inverts `x_j − z` for every point of `domain` (the DEEP denominator),
/// in one batched pass.
pub fn deep_denominators(domain: &LayerDomain, z: F) -> Vec<F> {
    let mut denoms = vec![F::zero(); domain.size];
    pool::parallel_chunks_mut(&mut denoms, GRAIN, |ci, chunk| {
        let start = ci * GRAIN;
        let mut x = domain.shift * domain.omega.pow_u64(start as u64);
        for slot in chunk.iter_mut() {
            *slot = x - z;
            x *= domain.omega;
        }
    });
    batch_inverse(&mut denoms);
    denoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::test_rng;
    use zkperf_poly::Radix2Domain;

    fn lde_domain(size: usize) -> (Radix2Domain<F>, LayerDomain) {
        let d = Radix2Domain::<F>::new(size).unwrap();
        let layer = LayerDomain {
            shift: d.coset_shift(),
            omega: d.group_gen(),
            size: d.size(),
        };
        (d, layer)
    }

    #[test]
    fn fold_matches_even_odd_decomposition() {
        let mut rng = test_rng();
        let (fft, layer) = lde_domain(64);
        let coeffs: Vec<F> = (0..32).map(|_| F::random(&mut rng)).collect();
        let beta = F::random(&mut rng);
        let mut values = coeffs.clone();
        values.resize(64, F::zero());
        fft.coset_fft_in_place(&mut values);
        let folded = fold_layer(&values, beta, &layer);
        // e + β·o evaluated on the squared domain.
        let even: Vec<F> = coeffs.iter().copied().step_by(2).collect();
        let odd: Vec<F> = coeffs.iter().copied().skip(1).step_by(2).collect();
        let next = layer.fold();
        for (i, got) in folded.iter().enumerate() {
            let y = next.element(i);
            let want = crate::air::eval_poly(&even, y) + beta * crate::air::eval_poly(&odd, y);
            assert_eq!(*got, want, "fold diverges at {i}");
        }
    }

    #[test]
    fn commit_phase_reaches_the_final_bound() {
        let mut rng = test_rng();
        let (fft, layer) = lde_domain(256);
        let n = 64; // degree bound; blowup 4
        let coeffs: Vec<F> = (0..n).map(|_| F::random(&mut rng)).collect();
        let mut values = coeffs.clone();
        values.resize(256, F::zero());
        fft.coset_fft_in_place(&mut values);
        let mut t = Transcript::new(0xf21);
        let fri = fri_commit(values, n, layer, &mut t);
        assert_eq!(fri.layers.len(), num_folds(n));
        assert_eq!(fri.final_coeffs.len(), FINAL_POLY_MAX_DEGREE);
        // An honest codeword's final polynomial really is low-degree: the
        // last fold of the committed layers evaluates to it everywhere.
        let last = fri.layers.last().unwrap();
        let final_vals = fold_layer(&last.values, *fri.betas.last().unwrap(), &last.domain);
        let final_domain = last.domain.fold();
        for (i, v) in final_vals.iter().enumerate() {
            assert_eq!(
                *v,
                crate::air::eval_poly(&fri.final_coeffs, final_domain.element(i))
            );
        }
    }

    #[test]
    fn tiny_bounds_need_no_folds() {
        assert_eq!(num_folds(1), 0);
        assert_eq!(num_folds(8), 0);
        assert_eq!(num_folds(16), 1);
        assert_eq!(final_degree_bound(1), 1);
        assert_eq!(final_degree_bound(16), 8);
        assert_eq!(final_degree_bound(1 << 14), 8);
    }

    #[test]
    fn deep_denominators_match_direct_inverses() {
        let mut rng = test_rng();
        let (_, layer) = lde_domain(32);
        let z = F::random(&mut rng);
        let denoms = deep_denominators(&layer, z);
        for (i, d) in denoms.iter().enumerate() {
            assert_eq!(*d, (layer.element(i) - z).inverse().unwrap());
        }
    }
}
