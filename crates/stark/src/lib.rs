#![warn(missing_docs)]

//! A transparent FRI/STARK-style proving system over the Goldilocks
//! field — the suite's no-trusted-setup comparison point beside Groth16
//! and PLONK.
//!
//! The paper's two backends both rest on pairings and a structured
//! reference string; the SNARK-vs-STARK literature argues the defining
//! tradeoff (transparent setup vs proof size vs prover bandwidth) only
//! shows up when a hash-based backend runs in the same harness. This
//! crate supplies that backend end to end:
//!
//! - [`air`] — the R1CS → trace mapping: per-constraint inner products as
//!   three columns, public wires as a boundary column;
//! - [`merkle`] — Poseidon Merkle commitments (the same `poseidon_hash2`
//!   the circuit library uses), built on the deterministic pool;
//! - [`transcript`] — a Poseidon duplex sponge for Fiat-Shamir;
//! - [`fri`] — the fold-by-two low-degree test with configurable blowup
//!   and query count ([`StarkParams`], `ZKPERF_STARK_*` knobs);
//! - [`prove`](fn@prove) / [`verify`](fn@verify) — the DEEP-style
//!   protocol: commit trace and quotient, evaluate out of domain, fold
//!   the DEEP composition, answer queries;
//! - [`proof`] — the proof object and its canonical byte codec.
//!
//! Proving takes no randomness at all — proofs are byte-identical across
//! runs and thread counts. Soundness scope: the quotient check binds the
//! committed columns to the constraint system and the boundary column
//! binds the claimed public inputs, but (as documented in DESIGN §16)
//! there is no lincheck tying the three columns to a single committed
//! witness vector and no zero-knowledge blinding — performance
//! characterization, not production soundness, is the goal.

pub mod air;
pub mod error;
pub mod fri;
pub mod merkle;
pub mod params;
pub mod proof;
mod prove;
pub mod transcript;
mod verify;

pub use error::StarkError;
pub use params::{StarkParams, BLOWUP_ENV, FINAL_POLY_MAX_DEGREE, QUERIES_ENV};
pub use proof::{FriStep, OodEvals, QueryOpening, StarkProof};
pub use prove::prove;
pub use verify::verify;

/// The field the backend runs on.
pub use zkperf_ff::Goldilocks;

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_circuit::library::{exponentiate, merkle_membership_poseidon};
    use zkperf_ff::Field;

    type F = Goldilocks;

    fn small_params() -> StarkParams {
        StarkParams {
            blowup: 4,
            num_queries: 12,
        }
    }

    #[test]
    fn exponentiate_roundtrip_accepts() {
        let circuit = exponentiate::<F>(64);
        let w = circuit.generate_witness(&[F::from_u64(3)], &[]).unwrap();
        let params = small_params();
        let proof = prove(circuit.r1cs(), w.full(), &params).unwrap();
        verify(circuit.r1cs(), w.public(), &proof, &params).unwrap();
    }

    #[test]
    fn merkle_membership_roundtrip_accepts() {
        let circuit = merkle_membership_poseidon::<F>(4);
        let path: Vec<(F, bool)> = (0..4).map(|i| (F::from_u64(100 + i), i % 2 == 0)).collect();
        let (inputs, _root) =
            zkperf_circuit::library::merkle_path_inputs_poseidon(F::from_u64(7), &path);
        let w = circuit.generate_witness(&[], &inputs).unwrap();
        let params = small_params();
        let proof = prove(circuit.r1cs(), w.full(), &params).unwrap();
        verify(circuit.r1cs(), w.public(), &proof, &params).unwrap();
    }

    #[test]
    fn unsatisfying_witness_proves_but_never_verifies() {
        let circuit = exponentiate::<F>(16);
        let w = circuit.generate_witness(&[F::from_u64(2)], &[]).unwrap();
        let mut bad = w.full().to_vec();
        let last = bad.len() - 1;
        bad[last] += F::one();
        let params = small_params();
        let proof = prove(circuit.r1cs(), &bad, &params).unwrap();
        let err = verify(circuit.r1cs(), w.public(), &proof, &params).unwrap_err();
        assert!(
            matches!(err, StarkError::OodInconsistent | StarkError::QuotientMismatch { .. }),
            "unexpected rejection path: {err}"
        );
    }

    #[test]
    fn wrong_public_inputs_are_rejected() {
        let circuit = exponentiate::<F>(16);
        let w = circuit.generate_witness(&[F::from_u64(2)], &[]).unwrap();
        let params = small_params();
        let proof = prove(circuit.r1cs(), w.full(), &params).unwrap();
        let mut tampered = w.public().to_vec();
        tampered[1] += F::one();
        assert!(verify(circuit.r1cs(), &tampered, &proof, &params).is_err());
    }

    #[test]
    fn params_mismatch_is_typed() {
        let circuit = exponentiate::<F>(16);
        let w = circuit.generate_witness(&[F::from_u64(2)], &[]).unwrap();
        let params = small_params();
        let proof = prove(circuit.r1cs(), w.full(), &params).unwrap();
        let other = StarkParams {
            blowup: 8,
            num_queries: params.num_queries,
        };
        let err = verify(circuit.r1cs(), w.public(), &proof, &other).unwrap_err();
        assert!(matches!(
            err,
            StarkError::ParamsMismatch { what: "blowup", .. }
        ));
    }

    #[test]
    fn proof_bytes_roundtrip_and_verify() {
        let circuit = exponentiate::<F>(32);
        let w = circuit.generate_witness(&[F::from_u64(5)], &[]).unwrap();
        let params = small_params();
        let proof = prove(circuit.r1cs(), w.full(), &params).unwrap();
        let bytes = proof.encode();
        let decoded = StarkProof::decode(&bytes).unwrap();
        assert_eq!(decoded, proof);
        verify(circuit.r1cs(), w.public(), &decoded, &params).unwrap();
    }

    #[test]
    fn proving_is_deterministic() {
        let circuit = exponentiate::<F>(32);
        let w = circuit.generate_witness(&[F::from_u64(5)], &[]).unwrap();
        let params = small_params();
        let one = prove(circuit.r1cs(), w.full(), &params).unwrap().encode();
        let two = prove(circuit.r1cs(), w.full(), &params).unwrap().encode();
        assert_eq!(one, two);
    }

    #[test]
    fn cancellation_is_typed() {
        let circuit = exponentiate::<F>(16);
        let w = circuit.generate_witness(&[F::from_u64(2)], &[]).unwrap();
        let token = zkperf_pool::CancelToken::new();
        token.cancel();
        let _scope = token.enter();
        let err = prove(circuit.r1cs(), w.full(), &small_params()).unwrap_err();
        assert_eq!(err, StarkError::Cancelled);
    }

    #[test]
    fn tiny_circuit_with_single_constraint() {
        let circuit = exponentiate::<F>(1);
        let w = circuit.generate_witness(&[F::from_u64(9)], &[]).unwrap();
        let params = small_params();
        let proof = prove(circuit.r1cs(), w.full(), &params).unwrap();
        verify(circuit.r1cs(), w.public(), &proof, &params).unwrap();
    }
}
