//! Poseidon Merkle commitments over Goldilocks rows.
//!
//! One tree commits one codeword (or one multi-column row per leaf).
//! Leaves are compressed with a sponge chain over [`poseidon_hash2`],
//! internal nodes with a single two-to-one call. Layer construction runs
//! on the deterministic pool: every node is a pure function of its two
//! children and nodes are written to disjoint slots, so the tree — and
//! with it every STARK proof byte — is identical at any thread count.

use zkperf_circuit::poseidon::poseidon_hash2;
use zkperf_ff::{Field, Goldilocks};
use zkperf_pool as pool;
use zkperf_trace as trace;

type F = Goldilocks;

/// Parallelization grain: hashing fewer nodes than this per task would be
/// dominated by pool dispatch.
const GRAIN: usize = 64;

/// Compresses one leaf row (any length, including empty) to a digest with
/// a zero-initialized sponge chain.
pub fn hash_row(row: &[F]) -> F {
    let mut acc = F::zero();
    for v in row {
        acc = poseidon_hash2(acc, *v);
    }
    acc
}

/// A fully materialized Merkle tree over a power-of-two number of leaf
/// digests.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` are the leaf digests; each later level halves; the
    /// last holds the single root.
    levels: Vec<Vec<F>>,
}

impl MerkleTree {
    /// Builds the tree over precomputed leaf digests.
    ///
    /// # Panics
    ///
    /// Panics when `digests` is empty or not a power of two — domain
    /// sizes in this crate always are.
    pub fn from_leaf_digests(digests: Vec<F>) -> Self {
        assert!(
            digests.len().is_power_of_two(),
            "leaf count must be a power of two"
        );
        let _g = trace::region_profile("merkle");
        let mut levels = vec![digests];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = vec![F::zero(); prev.len() / 2];
            pool::parallel_fill(&mut next, GRAIN, |i| {
                poseidon_hash2(prev[2 * i], prev[2 * i + 1])
            });
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Builds the tree over per-leaf rows produced by `row(i)`, hashing
    /// the leaves in parallel.
    pub fn from_rows(leaves: usize, row: impl Fn(usize) -> Vec<F> + Sync) -> Self {
        let _g = trace::region_profile("merkle");
        let mut digests = vec![F::zero(); leaves];
        pool::parallel_fill(&mut digests, GRAIN, |i| hash_row(&row(i)));
        Self::from_leaf_digests(digests)
    }

    /// The root digest.
    pub fn root(&self) -> F {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// The authentication path for `index`: sibling digests bottom-up.
    pub fn open(&self, index: usize) -> Vec<F> {
        let mut path = Vec::with_capacity(self.levels.len() - 1);
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            path.push(level[i ^ 1]);
            i >>= 1;
        }
        path
    }
}

/// Recomputes the root from a leaf digest and its authentication path;
/// `true` iff it matches `root`.
pub fn verify_path(root: F, index: usize, leaf_digest: F, path: &[F]) -> bool {
    let mut acc = leaf_digest;
    let mut i = index;
    for sibling in path {
        acc = if i & 1 == 0 {
            poseidon_hash2(acc, *sibling)
        } else {
            poseidon_hash2(*sibling, acc)
        };
        i >>= 1;
    }
    i == 0 && acc == root
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::test_rng;

    #[test]
    fn open_verifies_at_every_index() {
        let mut rng = test_rng();
        let digests: Vec<F> = (0..32).map(|_| F::random(&mut rng)).collect();
        let tree = MerkleTree::from_leaf_digests(digests.clone());
        for (i, d) in digests.iter().enumerate() {
            let path = tree.open(i);
            assert_eq!(path.len(), 5);
            assert!(verify_path(tree.root(), i, *d, &path));
            // Wrong index, wrong leaf, tampered sibling: all rejected.
            assert!(!verify_path(tree.root(), i ^ 1, *d, &path));
            assert!(!verify_path(tree.root(), i, *d + F::one(), &path));
            let mut bad = path.clone();
            bad[2] += F::one();
            assert!(!verify_path(tree.root(), i, *d, &bad));
        }
    }

    #[test]
    fn path_longer_than_tree_is_rejected() {
        let tree = MerkleTree::from_leaf_digests(vec![F::one(); 4]);
        let mut path = tree.open(1);
        assert!(verify_path(tree.root(), 1, F::one(), &path));
        path.push(F::zero());
        assert!(!verify_path(tree.root(), 1, F::one(), &path));
    }

    #[test]
    fn trees_are_thread_count_invariant() {
        let mut rng = test_rng();
        let rows: Vec<Vec<F>> = (0..256)
            .map(|_| (0..4).map(|_| F::random(&mut rng)).collect())
            .collect();
        let build = || MerkleTree::from_rows(rows.len(), |i| rows[i].clone()).root();
        pool::set_threads(1);
        let serial = build();
        pool::set_threads(4);
        let parallel = build();
        pool::set_threads(1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn single_leaf_tree_is_its_own_root() {
        let tree = MerkleTree::from_leaf_digests(vec![F::from_u64(9)]);
        assert_eq!(tree.root(), F::from_u64(9));
        assert!(tree.open(0).is_empty());
        assert!(verify_path(tree.root(), 0, F::from_u64(9), &[]));
    }
}
