//! FRI parameters and their `ZKPERF_STARK_*` environment knobs.

use std::fmt;

/// Degree bound of the final FRI polynomial: folding stops once the
/// claimed degree is `≤ FINAL_POLY_MAX_DEGREE` and the remaining
/// polynomial is sent in the clear.
pub const FINAL_POLY_MAX_DEGREE: usize = 8;

/// The two tunable security/performance levers of the FRI low-degree
/// test.
///
/// Soundness per query is roughly `log2(blowup)` bits (the rate of the
/// Reed-Solomon code), so the proven budget is about
/// `num_queries · log2(blowup)` bits — the defaults (8, 30) target ~90
/// bits against the query phase, in line with the conjectured-soundness
/// settings production STARKs ship. Raising `blowup` grows prover time
/// and shrinks the proof (fewer queries needed for the same budget);
/// raising `num_queries` grows the proof and verify time linearly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StarkParams {
    /// LDE blowup factor (code rate `1/blowup`); a power of two in
    /// `[2, 64]`.
    pub blowup: usize,
    /// Number of FRI query rounds; in `[1, 128]`.
    pub num_queries: usize,
}

impl Default for StarkParams {
    fn default() -> Self {
        StarkParams {
            blowup: 8,
            num_queries: 30,
        }
    }
}

impl fmt::Display for StarkParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blowup={} queries={}", self.blowup, self.num_queries)
    }
}

/// Environment variable overriding [`StarkParams::blowup`].
pub const BLOWUP_ENV: &str = "ZKPERF_STARK_BLOWUP";
/// Environment variable overriding [`StarkParams::num_queries`].
pub const QUERIES_ENV: &str = "ZKPERF_STARK_QUERIES";

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl StarkParams {
    /// The defaults with any `ZKPERF_STARK_BLOWUP` / `ZKPERF_STARK_QUERIES`
    /// overrides applied. Out-of-range or malformed values are clamped to
    /// the documented ranges rather than erroring, so a bad knob degrades
    /// to a sane run instead of killing a sweep.
    pub fn from_env() -> Self {
        let mut p = StarkParams::default();
        if let Some(b) = env_usize(BLOWUP_ENV) {
            p.blowup = b.next_power_of_two().clamp(2, 64);
        }
        if let Some(q) = env_usize(QUERIES_ENV) {
            p.num_queries = q.clamp(1, 128);
        }
        p
    }

    /// Approximate conjectured soundness of the query phase, in bits.
    pub fn soundness_bits(&self) -> u32 {
        self.blowup.trailing_zeros() * self.num_queries as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_hit_the_documented_budget() {
        let p = StarkParams::default();
        assert_eq!(p.blowup, 8);
        assert_eq!(p.num_queries, 30);
        assert_eq!(p.soundness_bits(), 90);
    }

    #[test]
    fn env_overrides_clamp() {
        // Direct clamp math (the env read itself is covered by the
        // `scripts/check.sh` stark tier, which sets the knobs).
        assert_eq!(200usize.next_power_of_two().clamp(2, 64), 64);
        assert_eq!(0usize.next_power_of_two().clamp(2, 64), 2);
        assert_eq!(3usize.next_power_of_two().clamp(2, 64), 4);
    }
}
