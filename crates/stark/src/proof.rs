//! The STARK proof object and its byte codec.
//!
//! Proofs are plain data: field elements are canonical little-endian
//! `u64`s, lengths are `u64`s, and the layout is fixed by the header.
//! The decoder validates every length against hard caps before
//! allocating, so garbage bytes produce a typed [`StarkError::Decode`]
//! rather than an OOM or panic — serve feeds it untrusted job payloads.

use zkperf_ff::{Field, Goldilocks};

use crate::error::StarkError;

type F = Goldilocks;

/// Format magic: `"zkSTARK1"` as a little-endian word.
const MAGIC: u64 = 0x314b_5241_5453_6b7a;

/// Hard cap on any decoded length: no real proof in the sweep range
/// exceeds it, and it bounds allocation on hostile input.
const MAX_LEN: u64 = 1 << 26;

/// The out-of-domain evaluations at the DEEP point `z`, in column order
/// `a, b, c, p, q`.
pub type OodEvals = [F; 5];

/// One FRI query step: the `(lo, hi)` pair of a committed layer with
/// both authentication paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FriStep {
    /// Value at pair index `i` (the `x` half).
    pub lo: F,
    /// Value at `i + size/2` (the `−x` half).
    pub hi: F,
    /// Authentication path of `lo`.
    pub lo_path: Vec<F>,
    /// Authentication path of `hi`.
    pub hi_path: Vec<F>,
}

/// Everything opened for one query index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOpening {
    /// The queried LDE position.
    pub index: u64,
    /// The trace row `(a, b, c, p)` at that position.
    pub trace_row: [F; 4],
    /// Authentication path of the trace row.
    pub trace_path: Vec<F>,
    /// The quotient value at that position.
    pub q_value: F,
    /// Authentication path of the quotient value.
    pub q_path: Vec<F>,
    /// One step per committed FRI layer.
    pub fri: Vec<FriStep>,
}

/// A transparent proof for one (circuit, public input) statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarkProof {
    /// Trace-domain size the prover used.
    pub n: u64,
    /// Public-wire count the prover used.
    pub k: u64,
    /// LDE blowup factor the prover used.
    pub blowup: u64,
    /// Query count the prover used.
    pub num_queries: u64,
    /// Root of the trace commitment.
    pub trace_root: F,
    /// Root of the quotient commitment.
    pub q_root: F,
    /// Out-of-domain evaluations at `z`.
    pub ood: OodEvals,
    /// Roots of the committed FRI layers.
    pub fri_roots: Vec<F>,
    /// Final FRI polynomial, low-order coefficient first.
    pub final_coeffs: Vec<F>,
    /// Per-query openings.
    pub queries: Vec<QueryOpening>,
}

impl StarkProof {
    /// Serialized size in bytes (every word is 8 bytes).
    pub fn size_bytes(&self) -> usize {
        self.encode().len()
    }

    /// Encodes to the canonical byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.word(MAGIC);
        for v in [self.n, self.k, self.blowup, self.num_queries] {
            w.word(v);
        }
        w.field(self.trace_root);
        w.field(self.q_root);
        for v in self.ood {
            w.field(v);
        }
        w.fields(&self.fri_roots);
        w.fields(&self.final_coeffs);
        w.word(self.queries.len() as u64);
        for q in &self.queries {
            w.word(q.index);
            for v in q.trace_row {
                w.field(v);
            }
            w.fields(&q.trace_path);
            w.field(q.q_value);
            w.fields(&q.q_path);
            w.word(q.fri.len() as u64);
            for step in &q.fri {
                w.field(step.lo);
                w.field(step.hi);
                w.fields(&step.lo_path);
                w.fields(&step.hi_path);
            }
        }
        w.out
    }

    /// Decodes the canonical byte layout.
    ///
    /// # Errors
    ///
    /// [`StarkError::Decode`] on truncation, bad magic, non-canonical
    /// field words, or lengths past the sanity cap.
    pub fn decode(bytes: &[u8]) -> Result<Self, StarkError> {
        let mut r = Reader { bytes, at: 0 };
        if r.word("magic")? != MAGIC {
            return Err(StarkError::Decode { what: "magic" });
        }
        let n = r.word("n")?;
        let k = r.word("k")?;
        let blowup = r.word("blowup")?;
        let num_queries = r.word("num_queries")?;
        let trace_root = r.field("trace_root")?;
        let q_root = r.field("q_root")?;
        let mut ood = [F::default(); 5];
        for slot in ood.iter_mut() {
            *slot = r.field("ood")?;
        }
        let fri_roots = r.fields("fri_roots")?;
        let final_coeffs = r.fields("final_coeffs")?;
        let num_openings = r.len("queries")?;
        let mut queries = Vec::with_capacity(num_openings);
        for _ in 0..num_openings {
            let index = r.word("query index")?;
            let mut trace_row = [F::default(); 4];
            for slot in trace_row.iter_mut() {
                *slot = r.field("trace row")?;
            }
            let trace_path = r.fields("trace path")?;
            let q_value = r.field("q value")?;
            let q_path = r.fields("q path")?;
            let steps = r.len("fri steps")?;
            let mut fri = Vec::with_capacity(steps);
            for _ in 0..steps {
                fri.push(FriStep {
                    lo: r.field("fri lo")?,
                    hi: r.field("fri hi")?,
                    lo_path: r.fields("fri lo path")?,
                    hi_path: r.fields("fri hi path")?,
                });
            }
            queries.push(QueryOpening {
                index,
                trace_row,
                trace_path,
                q_value,
                q_path,
                fri,
            });
        }
        if r.at != bytes.len() {
            return Err(StarkError::Decode { what: "trailing bytes" });
        }
        Ok(StarkProof {
            n,
            k,
            blowup,
            num_queries,
            trace_root,
            q_root,
            ood,
            fri_roots,
            final_coeffs,
            queries,
        })
    }
}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn word(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn field(&mut self, v: F) {
        self.word(v.as_canonical_u64());
    }

    fn fields(&mut self, vs: &[F]) {
        self.word(vs.len() as u64);
        for v in vs {
            self.field(*v);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn word(&mut self, what: &'static str) -> Result<u64, StarkError> {
        let end = self
            .at
            .checked_add(8)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StarkError::Decode { what })?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes[self.at..end]);
        self.at = end;
        Ok(u64::from_le_bytes(buf))
    }

    fn field(&mut self, what: &'static str) -> Result<F, StarkError> {
        let v = self.word(what)?;
        if v >= zkperf_ff::goldilocks::MODULUS {
            return Err(StarkError::Decode { what });
        }
        Ok(F::from_u64(v))
    }

    fn len(&mut self, what: &'static str) -> Result<usize, StarkError> {
        let v = self.word(what)?;
        if v > MAX_LEN {
            return Err(StarkError::Decode { what });
        }
        Ok(v as usize)
    }

    fn fields(&mut self, what: &'static str) -> Result<Vec<F>, StarkError> {
        let n = self.len(what)?;
        // A second guard against hostile lengths: the remaining bytes
        // must actually contain the announced words.
        if n * 8 > self.bytes.len() - self.at {
            return Err(StarkError::Decode { what });
        }
        (0..n).map(|_| self.field(what)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::Field;

    fn sample() -> StarkProof {
        let f = |v: u64| F::from_u64(v);
        StarkProof {
            n: 16,
            k: 3,
            blowup: 8,
            num_queries: 2,
            trace_root: f(11),
            q_root: f(12),
            ood: [f(1), f(2), f(3), f(4), f(5)],
            fri_roots: vec![f(21), f(22)],
            final_coeffs: vec![f(31), f(32), f(33)],
            queries: vec![QueryOpening {
                index: 9,
                trace_row: [f(41), f(42), f(43), f(44)],
                trace_path: vec![f(51)],
                q_value: f(61),
                q_path: vec![f(71), f(72)],
                fri: vec![FriStep {
                    lo: f(81),
                    hi: f(82),
                    lo_path: vec![f(91)],
                    hi_path: vec![f(92)],
                }],
            }],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let proof = sample();
        let bytes = proof.encode();
        assert_eq!(bytes.len(), proof.size_bytes());
        assert_eq!(StarkProof::decode(&bytes).unwrap(), proof);
    }

    #[test]
    fn truncation_and_garbage_are_typed_decode_errors() {
        let bytes = sample().encode();
        for cut in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                StarkProof::decode(&bytes[..cut]),
                Err(StarkError::Decode { .. })
            ));
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            StarkProof::decode(&trailing),
            Err(StarkError::Decode { what: "trailing bytes" })
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 1;
        assert!(matches!(
            StarkProof::decode(&bad_magic),
            Err(StarkError::Decode { what: "magic" })
        ));
        // A non-canonical field word (≥ p) is rejected, not reduced.
        let mut bad_field = bytes;
        bad_field[5 * 8..6 * 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            StarkProof::decode(&bad_field),
            Err(StarkError::Decode { .. })
        ));
    }

    #[test]
    fn hostile_length_is_capped() {
        let mut w = Writer::default();
        w.word(MAGIC);
        for _ in 0..4 {
            w.word(1);
        }
        w.field(F::zero());
        w.field(F::zero());
        for _ in 0..5 {
            w.field(F::zero());
        }
        w.word(u64::MAX); // fri_roots length
        assert!(matches!(
            StarkProof::decode(&w.out),
            Err(StarkError::Decode { what: "fri_roots" })
        ));
    }
}
