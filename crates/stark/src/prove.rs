//! The transparent prover: trace LDE → Merkle commit → quotient → DEEP →
//! FRI → queries.
//!
//! The pipeline is deliberately randomness-free: every challenge comes
//! from the Fiat-Shamir transcript and every parallel loop uses the
//! pool's deterministic decomposition, so the proof bytes are a pure
//! function of `(circuit, witness, params)` — the property the
//! thread-determinism suite byte-compares and serve's duplicate-detection
//! relies on.

use zkperf_circuit::R1cs;
use zkperf_ff::{batch_inverse, Field, Goldilocks};
use zkperf_poly::Radix2Domain;
use zkperf_pool as pool;
use zkperf_trace as trace;

use crate::air::{build_trace, eval_poly, public_interpolant, public_vanishing};
use crate::error::StarkError;
use crate::fri::{deep_denominators, fri_commit, LayerDomain};
use crate::merkle::MerkleTree;
use crate::params::StarkParams;
use crate::proof::{FriStep, QueryOpening, StarkProof};
use crate::transcript::Transcript;

type F = Goldilocks;

/// Transcript domain separator for this protocol version.
pub(crate) const TRANSCRIPT_LABEL: u64 = 0x7a6b_5354_4152_4b31;

/// Parallelization grain for pointwise column arithmetic.
const GRAIN: usize = 256;

/// Draws the DEEP evaluation point: resamples until `z` lies outside both
/// the trace domain and the LDE coset, so every denominator the protocol
/// divides by is non-zero. Prover and verifier run the identical loop.
pub(crate) fn draw_deep_point(
    transcript: &mut Transcript,
    n: usize,
    lde: &LayerDomain,
) -> F {
    loop {
        let z = transcript.challenge();
        let in_trace_domain = z.pow_u64(n as u64).is_one();
        let shifted = z * lde.shift.inverse().expect("shift is non-zero");
        let in_lde_coset = shifted.pow_u64(lde.size as u64).is_one();
        if !in_trace_domain && !in_lde_coset && !z.is_zero() {
            return z;
        }
    }
}

/// Evaluates `Z_H(x) = xⁿ − 1` on the whole LDE coset.
///
/// `xⁿ = sⁿ·ω^{jn}` cycles with period `blowup`, so only `blowup`
/// distinct values exist; they are computed (and inverted) once.
pub(crate) fn vanishing_on_lde(n: usize, blowup: usize, lde: &LayerDomain) -> (Vec<F>, Vec<F>) {
    let s_n = lde.shift.pow_u64(n as u64);
    let omega_n = lde.omega.pow_u64(n as u64);
    let mut values = Vec::with_capacity(blowup);
    let mut acc = s_n;
    for _ in 0..blowup {
        values.push(acc - F::one());
        acc *= omega_n;
    }
    let mut inverses = values.clone();
    batch_inverse(&mut inverses);
    (values, inverses)
}

/// Runs the low-degree extension of one column: interpolate over `H`,
/// evaluate over the LDE coset. Returns `(coefficients, lde_values)`.
fn extend(
    column: &[F],
    dom_h: &Radix2Domain<F>,
    dom_lde: &Radix2Domain<F>,
) -> (Vec<F>, Vec<F>) {
    let mut coeffs = column.to_vec();
    dom_h.ifft_in_place(&mut coeffs);
    let mut lde = coeffs.clone();
    lde.resize(dom_lde.size(), F::zero());
    dom_lde.coset_fft_in_place(&mut lde);
    (coeffs, lde)
}

fn cancelled() -> Result<(), StarkError> {
    if pool::cancellation_pending() {
        Err(StarkError::Cancelled)
    } else {
        Ok(())
    }
}

/// Produces a transparent proof that `witness` satisfies `r1cs` with the
/// public prefix it carries.
///
/// # Errors
///
/// - [`StarkError::WitnessLength`] when the witness does not match the
///   circuit's wires;
/// - [`StarkError::DomainTooLarge`] when `n · blowup` exceeds the
///   field's 2-adic subgroup;
/// - [`StarkError::Cancelled`] when the ambient
///   [`zkperf_pool::CancelToken`] fires between phases.
///
/// An unsatisfying witness is not an error: the proof is produced and
/// verification rejects it, matching the pairing backends.
pub fn prove(
    r1cs: &R1cs<F>,
    witness: &[F],
    params: &StarkParams,
) -> Result<StarkProof, StarkError> {
    cancelled()?;
    let cols = build_trace(r1cs, witness)?;
    let (n, k) = (cols.layout.n, cols.layout.k);
    let n_ext = n
        .checked_mul(params.blowup)
        .ok_or(StarkError::DomainTooLarge { needed: usize::MAX })?;
    let dom_h = Radix2Domain::<F>::new(n).ok_or(StarkError::DomainTooLarge { needed: n })?;
    let dom_lde =
        Radix2Domain::<F>::new(n_ext).ok_or(StarkError::DomainTooLarge { needed: n_ext })?;
    let lde = LayerDomain {
        shift: dom_lde.coset_shift(),
        omega: dom_lde.group_gen(),
        size: n_ext,
    };
    let public = &witness[..k];

    // Commit the trace over the LDE coset.
    cancelled()?;
    let ((a_coeffs, a_lde), (b_coeffs, b_lde), (c_coeffs, c_lde), (p_coeffs, p_lde)) = {
        let _g = trace::region_profile("fft");
        (
            extend(&cols.a, &dom_h, &dom_lde),
            extend(&cols.b, &dom_h, &dom_lde),
            extend(&cols.c, &dom_h, &dom_lde),
            extend(&cols.p, &dom_h, &dom_lde),
        )
    };
    let trace_tree = MerkleTree::from_rows(n_ext, |i| {
        vec![a_lde[i], b_lde[i], c_lde[i], p_lde[i]]
    });

    let mut t = Transcript::new(TRANSCRIPT_LABEL);
    t.absorb_u64(n as u64);
    t.absorb_u64(k as u64);
    t.absorb_u64(params.blowup as u64);
    t.absorb_u64(params.num_queries as u64);
    t.absorb_slice(public);
    t.absorb(trace_tree.root());
    let alpha = t.challenge();

    // The combined quotient on the LDE coset.
    cancelled()?;
    let q_lde = {
        let _g = trace::region_profile("quotient");
        let (_, zh_inv) = vanishing_on_lde(n, params.blowup, &lde);
        let zpub = public_vanishing(&dom_h, k);
        let ipub = public_interpolant(&dom_h, public);
        let mut zpub_inv = vec![F::zero(); n_ext];
        pool::parallel_chunks_mut(&mut zpub_inv, GRAIN, |ci, chunk| {
            let start = ci * GRAIN;
            let mut x = lde.shift * lde.omega.pow_u64(start as u64);
            for slot in chunk.iter_mut() {
                *slot = eval_poly(&zpub, x);
                x *= lde.omega;
            }
        });
        batch_inverse(&mut zpub_inv);
        let mut q = vec![F::zero(); n_ext];
        pool::parallel_chunks_mut(&mut q, GRAIN, |ci, chunk| {
            let start = ci * GRAIN;
            let mut x = lde.shift * lde.omega.pow_u64(start as u64);
            for (j, slot) in chunk.iter_mut().enumerate() {
                let i = start + j;
                let gate = (a_lde[i] * b_lde[i] - c_lde[i]) * zh_inv[i % params.blowup];
                let boundary = alpha * (p_lde[i] - eval_poly(&ipub, x)) * zpub_inv[i];
                *slot = gate + boundary;
                x *= lde.omega;
            }
        });
        q
    };
    let q_tree = MerkleTree::from_rows(n_ext, |i| vec![q_lde[i]]);
    t.absorb(q_tree.root());

    // Out-of-domain evaluations at the DEEP point.
    cancelled()?;
    let z = draw_deep_point(&mut t, n, &lde);
    let q_coeffs = {
        let _g = trace::region_profile("fft");
        let mut coeffs = q_lde.clone();
        dom_lde.coset_ifft_in_place(&mut coeffs);
        coeffs
    };
    let ood = [
        eval_poly(&a_coeffs, z),
        eval_poly(&b_coeffs, z),
        eval_poly(&c_coeffs, z),
        eval_poly(&p_coeffs, z),
        eval_poly(&q_coeffs, z),
    ];
    t.absorb_slice(&ood);
    let gamma = t.challenge();

    // DEEP composition: F(x) = Σ γⁱ·(colᵢ(x) − colᵢ(z))/(x − z).
    cancelled()?;
    let deep = {
        let _g = trace::region_profile("deep");
        let denoms = deep_denominators(&lde, z);
        let columns: [&[F]; 5] = [&a_lde, &b_lde, &c_lde, &p_lde, &q_lde];
        let mut f = vec![F::zero(); n_ext];
        pool::parallel_chunks_mut(&mut f, GRAIN, |ci, chunk| {
            let start = ci * GRAIN;
            for (j, slot) in chunk.iter_mut().enumerate() {
                let i = start + j;
                let mut acc = F::zero();
                let mut coeff = F::one();
                for (col, ood_v) in columns.iter().zip(&ood) {
                    acc += coeff * (col[i] - *ood_v);
                    coeff *= gamma;
                }
                *slot = acc * denoms[i];
            }
        });
        f
    };

    // FRI commit phase plus the query openings.
    cancelled()?;
    let fri = fri_commit(deep, n, lde, &mut t);
    let indices: Vec<usize> = (0..params.num_queries)
        .map(|_| t.challenge_index(n_ext))
        .collect();
    let mut queries = vec![
        QueryOpening {
            index: 0,
            trace_row: [F::zero(); 4],
            trace_path: Vec::new(),
            q_value: F::zero(),
            q_path: Vec::new(),
            fri: Vec::new(),
        };
        indices.len()
    ];
    pool::parallel_for_each_mut(&mut queries, |qi, slot| {
        let q = indices[qi];
        let mut idx = q;
        let fri_steps: Vec<FriStep> = fri
            .layers
            .iter()
            .map(|layer| {
                let half = layer.values.len() / 2;
                let i = idx % half;
                let step = FriStep {
                    lo: layer.values[i],
                    hi: layer.values[i + half],
                    lo_path: layer.tree.open(i),
                    hi_path: layer.tree.open(i + half),
                };
                idx = i;
                step
            })
            .collect();
        *slot = QueryOpening {
            index: q as u64,
            trace_row: [a_lde[q], b_lde[q], c_lde[q], p_lde[q]],
            trace_path: trace_tree.open(q),
            q_value: q_lde[q],
            q_path: q_tree.open(q),
            fri: fri_steps,
        };
    });

    Ok(StarkProof {
        n: n as u64,
        k: k as u64,
        blowup: params.blowup as u64,
        num_queries: params.num_queries as u64,
        trace_root: trace_tree.root(),
        q_root: q_tree.root(),
        ood,
        fri_roots: fri.layers.iter().map(|l| l.tree.root()).collect(),
        final_coeffs: fri.final_coeffs,
        queries,
    })
}
