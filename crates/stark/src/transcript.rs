//! Fiat-Shamir transcript: a Poseidon duplex sponge over Goldilocks.
//!
//! Prover and verifier drive the identical absorb/challenge schedule, so
//! every challenge is bound to everything absorbed before it. The sponge
//! reuses the same `t = 3` Poseidon permutation as the Merkle layer — one
//! hash for the whole backend, one set of constants to audit.

use zkperf_circuit::poseidon::poseidon_permute;
use zkperf_ff::{Field, Goldilocks};

type F = Goldilocks;

/// A deterministic Fiat-Shamir transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transcript {
    state: [F; 3],
}

impl Transcript {
    /// A fresh transcript domain-separated by `label`.
    pub fn new(label: u64) -> Self {
        Transcript {
            state: poseidon_permute([F::from_u64(label), F::zero(), F::one()]),
        }
    }

    /// Absorbs one field element into the rate lane.
    pub fn absorb(&mut self, v: F) {
        self.state[0] += v;
        self.state = poseidon_permute(self.state);
    }

    /// Absorbs a machine word (lengths, parameters).
    pub fn absorb_u64(&mut self, v: u64) {
        self.absorb(F::from_u64(v));
    }

    /// Absorbs a slice, length-prefixed so `[a, b] ++ [c]` and
    /// `[a] ++ [b, c]` diverge.
    pub fn absorb_slice(&mut self, vs: &[F]) {
        self.absorb_u64(vs.len() as u64);
        for v in vs {
            self.absorb(*v);
        }
    }

    /// Squeezes one challenge element.
    pub fn challenge(&mut self) -> F {
        self.state = poseidon_permute(self.state);
        self.state[0]
    }

    /// Squeezes an index in `[0, bound)`.
    ///
    /// The modulo bias is `< bound / p ≈ 2⁻⁴⁰` for every domain size in
    /// the sweep range — irrelevant next to the query soundness budget.
    pub fn challenge_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.challenge().as_canonical_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_schedules_agree_and_diverge_on_any_absorb() {
        let mut a = Transcript::new(1);
        let mut b = Transcript::new(1);
        a.absorb(F::from_u64(7));
        b.absorb(F::from_u64(7));
        assert_eq!(a.challenge(), b.challenge());
        a.absorb(F::from_u64(8));
        b.absorb(F::from_u64(9));
        assert_ne!(a.challenge(), b.challenge());
    }

    #[test]
    fn labels_domain_separate() {
        let mut a = Transcript::new(1);
        let mut b = Transcript::new(2);
        assert_ne!(a.challenge(), b.challenge());
    }

    #[test]
    fn slice_absorption_is_length_prefixed() {
        let one = F::one();
        let mut a = Transcript::new(3);
        a.absorb_slice(&[one, one]);
        a.absorb_slice(&[one]);
        let mut b = Transcript::new(3);
        b.absorb_slice(&[one]);
        b.absorb_slice(&[one, one]);
        assert_ne!(a.challenge(), b.challenge());
    }

    #[test]
    fn indices_land_in_bounds() {
        let mut t = Transcript::new(4);
        for _ in 0..64 {
            assert!(t.challenge_index(37) < 37);
        }
    }
}
