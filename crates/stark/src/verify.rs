//! The transparent verifier: transcript replay, out-of-domain consistency
//! and the per-query Merkle/FRI spot checks.
//!
//! Every check failure is a distinct [`StarkError`] variant; the
//! soundness-negative battery asserts each mutation class dies in the
//! check that owns it.

use zkperf_circuit::R1cs;
use zkperf_ff::{Field, Goldilocks};
use zkperf_poly::Radix2Domain;
use zkperf_trace as trace;

use crate::air::{eval_poly, public_interpolant, public_vanishing, TraceLayout};
use crate::error::StarkError;
use crate::fri::{final_degree_bound, fold_pair, num_folds, LayerDomain};
use crate::merkle::{hash_row, verify_path};
use crate::params::StarkParams;
use crate::proof::StarkProof;
use crate::prove::{draw_deep_point, TRANSCRIPT_LABEL};
use crate::transcript::Transcript;

type F = Goldilocks;

fn check_header(
    proof: &StarkProof,
    layout: TraceLayout,
    params: &StarkParams,
    public: &[F],
) -> Result<(), StarkError> {
    let checks: [(&'static str, u64, u64); 5] = [
        ("trace length", layout.n as u64, proof.n),
        ("public wires", layout.k as u64, proof.k),
        ("blowup", params.blowup as u64, proof.blowup),
        ("num_queries", params.num_queries as u64, proof.num_queries),
        ("public input count", layout.k as u64, public.len() as u64),
    ];
    for (what, expected, got) in checks {
        if expected != got {
            return Err(StarkError::ParamsMismatch { what, expected, got });
        }
    }
    Ok(())
}

/// Verifies a transparent proof against the circuit and the claimed
/// public inputs (the `k` public wires, leading constant-one included).
///
/// # Errors
///
/// A [`StarkError`] naming the first check that failed; `Ok(())` means
/// the proof is accepted.
pub fn verify(
    r1cs: &R1cs<F>,
    public: &[F],
    proof: &StarkProof,
    params: &StarkParams,
) -> Result<(), StarkError> {
    let _g = trace::region_profile("stark_verify");
    let layout = TraceLayout::of(r1cs);
    check_header(proof, layout, params, public)?;
    let (n, k) = (layout.n, layout.k);
    let n_ext = n
        .checked_mul(params.blowup)
        .ok_or(StarkError::DomainTooLarge { needed: usize::MAX })?;
    let dom_h = Radix2Domain::<F>::new(n).ok_or(StarkError::DomainTooLarge { needed: n })?;
    let dom_lde =
        Radix2Domain::<F>::new(n_ext).ok_or(StarkError::DomainTooLarge { needed: n_ext })?;
    let lde = LayerDomain {
        shift: dom_lde.coset_shift(),
        omega: dom_lde.group_gen(),
        size: n_ext,
    };
    let folds = num_folds(n);
    if proof.fri_roots.len() != folds {
        return Err(StarkError::Malformed { what: "fri layer count" });
    }
    if proof.final_coeffs.len() != final_degree_bound(n) {
        return Err(StarkError::Malformed { what: "final polynomial length" });
    }
    if proof.queries.len() != params.num_queries {
        return Err(StarkError::Malformed { what: "query count" });
    }

    // Replay the transcript to re-derive every challenge.
    let mut t = Transcript::new(TRANSCRIPT_LABEL);
    t.absorb_u64(n as u64);
    t.absorb_u64(k as u64);
    t.absorb_u64(params.blowup as u64);
    t.absorb_u64(params.num_queries as u64);
    t.absorb_slice(public);
    t.absorb(proof.trace_root);
    let alpha = t.challenge();
    t.absorb(proof.q_root);
    let z = draw_deep_point(&mut t, n, &lde);
    t.absorb_slice(&proof.ood);
    let gamma = t.challenge();
    let mut betas = Vec::with_capacity(folds);
    for root in &proof.fri_roots {
        t.absorb(*root);
        betas.push(t.challenge());
    }
    t.absorb_slice(&proof.final_coeffs);
    let indices: Vec<usize> = (0..params.num_queries)
        .map(|_| t.challenge_index(n_ext))
        .collect();

    // Out-of-domain consistency: the committed quotient must satisfy the
    // constraint identity at z.
    let zpub = public_vanishing(&dom_h, k);
    let ipub = public_interpolant(&dom_h, public);
    let [a_z, b_z, c_z, p_z, q_z] = proof.ood;
    let zh_z = z.pow_u64(n as u64) - F::one();
    let zh_inv = zh_z.inverse().ok_or(StarkError::OodInconsistent)?;
    let zpub_inv = eval_poly(&zpub, z)
        .inverse()
        .ok_or(StarkError::OodInconsistent)?;
    let expected_q = (a_z * b_z - c_z) * zh_inv + alpha * (p_z - eval_poly(&ipub, z)) * zpub_inv;
    if expected_q != q_z {
        return Err(StarkError::OodInconsistent);
    }

    // Per-query spot checks.
    let z_inv_denominator = |x: F| (x - z).inverse();
    for (round, (query, &expect_idx)) in proof.queries.iter().zip(&indices).enumerate() {
        if query.index != expect_idx as u64 {
            return Err(StarkError::Malformed { what: "query index" });
        }
        let q = expect_idx;
        let x_q = lde.element(q);

        // Commitment openings.
        if !verify_path(
            proof.trace_root,
            q,
            hash_row(&query.trace_row),
            &query.trace_path,
        ) {
            return Err(StarkError::MerklePath { tree: "trace", query: round });
        }
        if !verify_path(proof.q_root, q, hash_row(&[query.q_value]), &query.q_path) {
            return Err(StarkError::MerklePath { tree: "quotient", query: round });
        }

        // The opened quotient must satisfy the identity pointwise.
        let [a_q, b_q, c_q, p_q] = query.trace_row;
        let zh_q = (x_q.pow_u64(n as u64) - F::one())
            .inverse()
            .ok_or(StarkError::QuotientMismatch { query: round })?;
        let zpub_q = eval_poly(&zpub, x_q)
            .inverse()
            .ok_or(StarkError::QuotientMismatch { query: round })?;
        let q_expected =
            (a_q * b_q - c_q) * zh_q + alpha * (p_q - eval_poly(&ipub, x_q)) * zpub_q;
        if q_expected != query.q_value {
            return Err(StarkError::QuotientMismatch { query: round });
        }

        // DEEP composition at the queried point, from the openings.
        let denom = z_inv_denominator(x_q).ok_or(StarkError::DeepMismatch { query: round })?;
        let mut expect = F::zero();
        let mut coeff = F::one();
        for (opened, ood_v) in [a_q, b_q, c_q, p_q, query.q_value].iter().zip(&proof.ood) {
            expect += coeff * (*opened - *ood_v);
            coeff *= gamma;
        }
        expect *= denom;

        // Walk the FRI layers down to the final polynomial.
        if query.fri.len() != folds {
            return Err(StarkError::Malformed { what: "fri step count" });
        }
        let mut idx = q;
        let mut domain = lde;
        for (layer, (step, beta)) in query.fri.iter().zip(&betas).enumerate() {
            let half = domain.size / 2;
            let i = idx % half;
            if !verify_path(proof.fri_roots[layer], i, hash_row(&[step.lo]), &step.lo_path) {
                return Err(StarkError::MerklePath { tree: "fri", query: round });
            }
            if !verify_path(
                proof.fri_roots[layer],
                i + half,
                hash_row(&[step.hi]),
                &step.hi_path,
            ) {
                return Err(StarkError::MerklePath { tree: "fri", query: round });
            }
            let at_position = if idx < half { step.lo } else { step.hi };
            if at_position != expect {
                if layer == 0 {
                    // Layer 0 *is* the DEEP composition; a mismatch here
                    // means the openings do not reproduce it.
                    return Err(StarkError::DeepMismatch { query: round });
                }
                return Err(StarkError::FriFold { layer, query: round });
            }
            expect = fold_pair(step.lo, step.hi, *beta, &domain, i);
            idx = i;
            domain = domain.fold();
        }
        if expect != eval_poly(&proof.final_coeffs, domain.element(idx)) {
            return Err(StarkError::FriFinal { query: round });
        }
    }
    Ok(())
}
