//! Fixed-seed differential fuzz campaign over every optimized kernel.
//!
//! ```text
//! fuzz_lite [--iters N] [--seed S] [--only SUBSTR] [--case K]
//!           [--skip-soundness] [--list]
//! ```
//!
//! The root seed comes from `--seed`, else the `ZKPERF_TESTKIT_SEED`
//! environment variable (decimal or `0x…` hex), else a built-in default —
//! so `scripts/check.sh` gets a reproducible smoke tier and a failure
//! report is replayed by pasting the printed command.

use std::process::ExitCode;

use zkperf_testkit::campaign::{run_campaign, CampaignConfig};
use zkperf_testkit::{all_oracles, parse_seed, seed_from_env};

const USAGE: &str = "usage: fuzz_lite [--iters N] [--seed S] [--only SUBSTR] [--case K] [--skip-soundness] [--list]";

fn parse_args() -> Result<Option<CampaignConfig>, String> {
    let mut config = CampaignConfig {
        seed: seed_from_env(),
        iters: 8,
        filter: None,
        case: None,
        skip_soundness: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--iters" => {
                config.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                let raw = value("--seed")?;
                config.seed = parse_seed(&raw).ok_or(format!("--seed: bad literal {raw:?}"))?;
            }
            "--only" => config.filter = Some(value("--only")?),
            "--case" => {
                config.case = Some(
                    value("--case")?
                        .parse()
                        .map_err(|e| format!("--case: {e}"))?,
                );
            }
            "--skip-soundness" => config.skip_soundness = true,
            "--list" => {
                for o in all_oracles() {
                    println!("{}", o.name);
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(Some(config)) => config,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fuzz_lite: {msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fuzz_lite: seed 0x{:x}, {} cases/oracle{}",
        config.seed,
        config.iters,
        config
            .filter
            .as_deref()
            .map(|f| format!(", filter {f:?}"))
            .unwrap_or_default()
    );
    let report = run_campaign(&config, |oracle, failures| {
        if failures.is_empty() {
            println!("  ok   {oracle}");
        } else {
            println!("  FAIL {oracle} ({} diverging case(s))", failures.len());
        }
    });
    println!(
        "fuzz_lite: {} oracle(s), {} case(s), {} mutation class(es)",
        report.oracles_run, report.cases_run, report.mutation_classes
    );
    if report.passed() {
        println!("fuzz_lite: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            eprintln!("fuzz_lite: FAIL {} case {}: {}", f.oracle, f.case, f.detail);
            eprintln!("  replay: {}", f.replay_command());
        }
        eprintln!("fuzz_lite: {} failure(s)", report.failures.len());
        ExitCode::FAILURE
    }
}
