//! Campaign driver: iterates oracles, collects failures, renders replay
//! commands.
//!
//! A campaign is fully determined by its root seed: the case at
//! `(seed, oracle, index)` always sees the same byte stream, so a failure
//! is replayed by re-running just that one case — the [`Failure`] carries
//! a ready-to-paste shell line.

use crate::oracles::{all_oracles, Oracle};
use crate::rng::{case_rng, SEED_ENV};
use crate::soundness::{distinct_classes, run_all_mutations};

/// What to run and how hard.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Root seed; every case derives from it.
    pub seed: u64,
    /// Cases per oracle.
    pub iters: u64,
    /// Only run oracles whose name contains this substring.
    pub filter: Option<String>,
    /// Pin a single case index (replay mode).
    pub case: Option<u64>,
    /// Skip the soundness-negative mutation suite.
    pub skip_soundness: bool,
}

impl CampaignConfig {
    /// The fixed-seed smoke configuration used by `scripts/check.sh`.
    pub fn smoke(seed: u64) -> Self {
        CampaignConfig {
            seed,
            iters: 4,
            filter: None,
            case: None,
            skip_soundness: false,
        }
    }
}

/// One diverging case, addressable for replay.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Oracle (or pseudo-oracle `soundness`) that diverged.
    pub oracle: String,
    /// Case index within the oracle's stream.
    pub case: u64,
    /// Campaign root seed.
    pub seed: u64,
    /// What diverged.
    pub detail: String,
}

impl Failure {
    /// A shell line that re-runs exactly this case.
    pub fn replay_command(&self) -> String {
        format!(
            "{}=0x{:x} cargo run --release --offline -p zkperf-testkit --bin fuzz_lite -- --only {} --case {}",
            SEED_ENV, self.seed, self.oracle, self.case
        )
    }
}

/// Aggregate result of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Oracles that matched the filter and ran.
    pub oracles_run: usize,
    /// Total differential cases executed.
    pub cases_run: u64,
    /// Distinct soundness mutation classes exercised (0 when skipped).
    pub mutation_classes: usize,
    /// Every diverging case.
    pub failures: Vec<Failure>,
}

impl CampaignReport {
    /// True when no case diverged.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn matches(filter: &Option<String>, name: &str) -> bool {
    filter.as_deref().is_none_or(|f| name.contains(f))
}

/// Pseudo-oracle name under which the mutation suite reports failures.
pub const SOUNDNESS_ORACLE: &str = "soundness";

/// Runs the campaign described by `config` against the full oracle
/// inventory plus the soundness suite, invoking `progress` after each
/// oracle completes (use `|_, _| {}` when no reporting is wanted).
pub fn run_campaign(
    config: &CampaignConfig,
    mut progress: impl FnMut(&str, &[Failure]),
) -> CampaignReport {
    let mut report = CampaignReport {
        oracles_run: 0,
        cases_run: 0,
        mutation_classes: 0,
        failures: Vec::new(),
    };
    for Oracle { name, run } in all_oracles() {
        if !matches(&config.filter, name) {
            continue;
        }
        report.oracles_run += 1;
        let before = report.failures.len();
        let cases: Vec<u64> = match config.case {
            Some(c) => vec![c],
            None => (0..config.iters).collect(),
        };
        for case in cases {
            let mut rng = case_rng(config.seed, name, case);
            report.cases_run += 1;
            if let Err(detail) = run(&mut rng) {
                report.failures.push(Failure {
                    oracle: name.to_string(),
                    case,
                    seed: config.seed,
                    detail,
                });
            }
        }
        progress(name, &report.failures[before..]);
    }
    if !config.skip_soundness && matches(&config.filter, SOUNDNESS_ORACLE) {
        let case = config.case.unwrap_or(0);
        let mut rng = case_rng(config.seed, SOUNDNESS_ORACLE, case);
        let before = report.failures.len();
        report.cases_run += 1;
        match run_all_mutations(&mut rng) {
            Ok(outcomes) => {
                report.mutation_classes = distinct_classes(&outcomes);
                for o in outcomes.iter().filter(|o| !o.rejected) {
                    report.failures.push(Failure {
                        oracle: SOUNDNESS_ORACLE.to_string(),
                        case,
                        seed: config.seed,
                        detail: format!(
                            "{}/{} accepted a mutated input ({})",
                            o.scheme, o.name, o.outcome
                        ),
                    });
                }
            }
            Err(detail) => report.failures.push(Failure {
                oracle: SOUNDNESS_ORACLE.to_string(),
                case,
                seed: config.seed,
                detail,
            }),
        }
        progress(SOUNDNESS_ORACLE, &report.failures[before..]);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_command_is_copy_pasteable() {
        let f = Failure {
            oracle: "msm_bn254_g1".into(),
            case: 3,
            seed: 0xabc,
            detail: "divergence".into(),
        };
        let cmd = f.replay_command();
        assert!(cmd.starts_with("ZKPERF_TESTKIT_SEED=0xabc "));
        assert!(cmd.contains("--only msm_bn254_g1"));
        assert!(cmd.contains("--case 3"));
    }

    #[test]
    fn filter_narrows_the_inventory() {
        let config = CampaignConfig {
            seed: 1,
            iters: 1,
            filter: Some("field_ops_bn254".into()),
            case: None,
            skip_soundness: true,
        };
        let report = run_campaign(&config, |_, _| {});
        assert_eq!(report.oracles_run, 2); // fr + fq
        assert_eq!(report.cases_run, 2);
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn case_pinning_runs_exactly_one_case() {
        let config = CampaignConfig {
            seed: 9,
            iters: 100, // ignored when a case is pinned
            filter: Some("field_inverse_bn254_fr".into()),
            case: Some(42),
            skip_soundness: true,
        };
        let report = run_campaign(&config, |_, _| {});
        assert_eq!(report.cases_run, 1);
        assert!(report.passed(), "{:?}", report.failures);
    }
}
