//! Adversarial input generators.
//!
//! Uniform random inputs almost never hit the paths where optimized
//! kernels break: the signed-digit carry chain saturated by `p − 1`, the
//! batch-adder tangent case from duplicate bases, the Montgomery final
//! reduction at `2p − 1`, the size-crossover branches between the naive
//! and windowed MSM. Every generator here is *biased*: roughly half of
//! its draws come from a hand-curated edge pool, the rest are uniform.

use rand::Rng;
use zkperf_circuit::library::{exponentiate, multiplier_chain};
use zkperf_circuit::{Circuit, Witness};
use zkperf_ec::{Affine, CurveParams, Projective};
use zkperf_ff::{BigUint, PrimeField};

use crate::rng::SplitRng;

/// The deterministic edge pool for a prime field: additive/multiplicative
/// identities, the extremes of the canonical range, limb-boundary values
/// (`2^64 ± 1`, `2^128`), and the values that flip the Montgomery final
/// reduction and the signed-window carry.
pub fn edge_fields<F: PrimeField>() -> Vec<F> {
    let p = F::modulus();
    let half = {
        let (q, _) = p.divrem_u64(2);
        F::from_biguint(&q)
    };
    vec![
        F::zero(),
        F::one(),
        F::from_u64(2),
        -F::one(),              // p − 1: saturates every window digit
        -F::from_u64(2),        // p − 2
        half,                   // (p−1)/2: the signed-digit pivot
        F::from_u64(u64::MAX),  // top of limb 0
        F::from_biguint(&BigUint::one().shl(64)),  // 2^64: limb carry
        F::from_biguint(&BigUint::one().shl(127)), // mid-limb boundary
        F::from_biguint(&BigUint::one().shl(128)), // 2-limb boundary
        -F::from_biguint(&BigUint::one().shl(64)), // p − 2^64
    ]
}

/// One field element: ~50% from [`edge_fields`], otherwise uniform.
pub fn adversarial_field<F: PrimeField>(rng: &mut SplitRng) -> F {
    let edges = edge_fields::<F>();
    if rng.gen_bool(0.5) {
        edges[rng.gen_range(0..edges.len() as u64) as usize]
    } else {
        F::random(rng)
    }
}

/// A scalar vector biased toward edge values **and** duplicates (duplicate
/// scalars land in the same Pippenger bucket, exercising the batch adder's
/// equal-point doubling branch).
pub fn adversarial_scalars<F: PrimeField>(rng: &mut SplitRng, n: usize) -> Vec<F> {
    let mut out: Vec<F> = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && rng.gen_bool(0.15) {
            // Duplicate (or negated duplicate) of an earlier entry.
            let j = rng.gen_range(0..i as u64) as usize;
            out.push(if rng.gen_bool(0.5) { out[j] } else { -out[j] });
        } else {
            out.push(adversarial_field(rng));
        }
    }
    out
}

/// A base-point vector biased toward the identity, the generator, and
/// duplicated / negated earlier points (the adversarial cases for
/// batch-affine addition: P + P, P + (−P), ∞ + P).
pub fn adversarial_points<C: CurveParams>(rng: &mut SplitRng, n: usize) -> Vec<Affine<C>> {
    let mut out: Vec<Affine<C>> = Vec::with_capacity(n);
    for i in 0..n {
        let roll: f64 = rng.gen();
        let p = if roll < 0.08 {
            Affine::identity()
        } else if roll < 0.16 {
            Affine::generator()
        } else if roll < 0.30 && i > 0 {
            let j = rng.gen_range(0..i as u64) as usize;
            if rng.gen_bool(0.5) {
                out[j]
            } else {
                out[j].neg()
            }
        } else {
            Projective::<C>::random(rng).to_affine()
        };
        out.push(p);
    }
    out
}

/// An input length biased toward the sizes where kernels change strategy:
/// 0, 1, the naive→windowed MSM crossover (`n = 8`), the window-width
/// breakpoints (32, 256), non-powers-of-two, and `2^k ± 1` straddles —
/// capped at `max`.
pub fn adversarial_len(rng: &mut SplitRng, max: usize) -> usize {
    const EDGES: [usize; 14] = [0, 1, 2, 3, 7, 8, 9, 31, 32, 33, 100, 255, 256, 257];
    let n = if rng.gen_bool(0.6) {
        EDGES[rng.gen_range(0..EDGES.len() as u64) as usize]
    } else {
        rng.gen_range(0..max.max(1) as u64) as usize
    };
    n.min(max)
}

/// A power-of-two NTT size `2^k` with `k` drawn from `0..=max_log`,
/// biased toward the extremes (size 1 and 2 degenerate the butterfly
/// network; the top sizes cross block/task thresholds).
pub fn adversarial_pow2(rng: &mut SplitRng, max_log: u32) -> usize {
    let log = if rng.gen_bool(0.4) {
        *[0u32, 1, max_log.saturating_sub(1), max_log]
            .get(rng.gen_range(0..4) as usize)
            .unwrap_or(&0)
    } else {
        rng.gen_range(0..(max_log + 1) as u64) as u32
    };
    1usize << log.min(max_log)
}

/// A randomly shaped benchmark circuit together with a satisfying witness.
///
/// Draws from the circuit library with adversarially small/awkward sizes
/// (1-constraint exponentiation, 2-factor chains) and edge-biased inputs;
/// the returned witness always satisfies the circuit.
pub fn adversarial_circuit<F: PrimeField>(rng: &mut SplitRng) -> (Circuit<F>, Witness<F>) {
    // Exponent/factor counts stay small: the fuzz tier runs full
    // setup+prove+verify per case.
    if rng.gen_bool(0.5) {
        let e = *[1usize, 2, 3, 4, 8, 16]
            .get(rng.gen_range(0..6) as usize)
            .unwrap_or(&4);
        let circuit = exponentiate::<F>(e);
        // Nonzero base: x = 0 is satisfiable too, but keep outputs distinct
        // from the one-wire so public-input mutations change the statement.
        let x = F::from_u64(2 + rng.gen_range(0..64));
        let w = circuit
            .generate_witness(&[x], &[])
            .expect("library circuit accepts any base");
        (circuit, w)
    } else {
        let k = 2 + rng.gen_range(0..4) as usize;
        let circuit = multiplier_chain::<F>(k);
        let factors: Vec<F> = (0..k).map(|_| F::from_u64(2 + rng.gen_range(0..64))).collect();
        let w = circuit
            .generate_witness(&[], &factors)
            .expect("library circuit accepts any factors");
        (circuit, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ff::bls12_381;
    use zkperf_ff::bn254::Fr;
    use zkperf_ff::Field;

    #[test]
    fn edge_fields_are_distinct_and_in_range() {
        fn check<F: PrimeField>() {
            let edges = edge_fields::<F>();
            for (i, a) in edges.iter().enumerate() {
                for b in edges.iter().skip(i + 1) {
                    assert_ne!(a, b, "duplicate edge value");
                }
                assert!(a.to_biguint() < F::modulus());
            }
        }
        check::<Fr>();
        check::<zkperf_ff::bn254::Fq>();
        check::<bls12_381::Fr>();
        check::<bls12_381::Fq>();
    }

    #[test]
    fn scalar_vectors_contain_duplicates_and_edges() {
        let mut rng = SplitRng::from_seed(11);
        let xs = adversarial_scalars::<Fr>(&mut rng, 256);
        assert_eq!(xs.len(), 256);
        assert!(xs.contains(&Fr::zero()) || xs.contains(&-Fr::one()));
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() < xs.len(), "expected duplicated scalars");
    }

    #[test]
    fn point_vectors_hit_identity_and_stay_on_curve() {
        let mut rng = SplitRng::from_seed(12);
        let ps = adversarial_points::<zkperf_ec::bn254::G1Params>(&mut rng, 128);
        assert!(ps.iter().any(|p| p.infinity));
        for p in &ps {
            assert!(p.infinity || p.is_on_curve());
        }
    }

    #[test]
    fn lengths_respect_cap_and_hit_crossovers() {
        let mut rng = SplitRng::from_seed(13);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            let n = adversarial_len(&mut rng, 64);
            assert!(n <= 64);
            seen.insert(n);
        }
        for must in [0usize, 1, 7, 8, 9] {
            assert!(seen.contains(&must), "never generated n = {must}");
        }
    }

    #[test]
    fn circuits_come_with_satisfying_witnesses() {
        let mut rng = SplitRng::from_seed(14);
        for _ in 0..8 {
            let (circuit, w) = adversarial_circuit::<Fr>(&mut rng);
            assert_eq!(circuit.r1cs().check_satisfied(w.full()), Ok(()));
        }
    }
}
