#![warn(missing_docs)]

//! Differential fuzzing, soundness-negative audit, and adversarial input
//! corpus for the zkperf workspace.
//!
//! The paper's numbers are only as good as the kernels that produce them:
//! after the Montgomery/MSM/NTT overhauls and the deterministic thread
//! pool, every hot path has a fast implementation whose correctness is no
//! longer obvious by inspection. This crate pins each of them to a slow,
//! independent reference and audits the proof systems from the adversary's
//! side:
//!
//! - [`rng`] — a splittable deterministic PRNG ([`SplitRng`]) addressing
//!   every case by `(root seed, oracle, case index)`, so any failure is
//!   replayable in O(1);
//! - [`gen`] — generators biased toward adversarial inputs: field values
//!   at limb and modulus boundaries, identity/duplicate/negated points,
//!   lengths straddling every kernel crossover;
//! - [`reference`] — slow, obviously-correct implementations (`BigUint`
//!   schoolbook arithmetic, double-and-add, O(n²) DFT) sharing no code
//!   with the optimized kernels;
//! - [`oracles`] — the differential comparisons themselves, one named
//!   oracle per (kernel, instantiation);
//! - [`soundness`] — mutation classes over valid Groth16/PLONK/STARK
//!   proofs that verification must reject (each STARK class pinned to the
//!   typed [`zkperf_stark::StarkError`] variant that owns it);
//! - [`campaign`] — the driver that iterates oracles, collects failures
//!   and renders `ZKPERF_TESTKIT_SEED=… fuzz_lite --only …` replay lines.
//!
//! The `fuzz_lite` binary exposes all of this on the command line and runs
//! as a fixed-seed smoke tier in `scripts/check.sh`.

pub mod campaign;
pub mod gen;
pub mod oracles;
pub mod reference;
pub mod rng;
pub mod soundness;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, Failure};
pub use oracles::{all_oracles, Oracle};
pub use rng::{case_rng, parse_seed, seed_from_env, SplitRng, DEFAULT_SEED, SEED_ENV};
pub use soundness::{run_all_mutations, run_stark_mutations, MutationOutcome};
