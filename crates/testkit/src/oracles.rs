//! Differential oracles: every optimized kernel pinned to a slow
//! reference.
//!
//! Each oracle runs **one** randomized case from a caller-supplied
//! [`SplitRng`] and reports any divergence as an `Err(detail)`. The
//! campaign layer (`campaign`) owns iteration, seed addressing and
//! replay reporting, so an oracle body stays a pure function of its RNG.
//!
//! The oracle inventory covers, per the kernel overhaul PRs:
//!
//! | optimized kernel                     | reference                        |
//! |--------------------------------------|----------------------------------|
//! | no-carry CIOS Montgomery mul/sqr     | `BigUint` schoolbook mod-mul     |
//! | modular add/sub/neg/double           | `BigUint` canonical arithmetic   |
//! | Fermat inverse + `batch_inverse`     | per-element inverse + product=1  |
//! | signed-window batch-affine `msm`     | `msm_naive` + double-and-add     |
//! | GLV lattice decomposition            | `k1 + λ·k2 ≡ k (mod r)` BigUint  |
//! | GLV msm / `mul_windowed` Straus      | naive MSM + double-and-add       |
//! | `FixedBaseTable` mul / `mul_batch`   | double-and-add                   |
//! | cached-twiddle NTT (fwd/inv/coset)   | O(n²) DFT + roundtrip identity   |
//! | four-step blocked NTT (forced path)  | flat radix-2 transform           |
//! | `Radix2Domain::element`, Lagrange    | ω-power run + interpolation      |
//! | twisted pairing + prepared G2 lines  | untwisted Miller + BigUint exp   |
//! | N-thread pool execution              | 1-thread execution, bit-for-bit  |
//! | Groth16 / PLONK pipelines            | end-to-end accept on valid input |
//! | Goldilocks field arithmetic          | `BigUint` canonical arithmetic   |
//! | Poseidon Merkle tree (STARK)         | recursive shared-nothing root    |
//! | FRI fold kernel                      | even/odd Horner on squared coset |
//! | STARK pipeline + proof codec         | end-to-end accept + roundtrip    |

use rand::Rng;
use zkperf_ec::{msm, msm_naive, msm_stream, Affine, CurveParams, Engine, FixedBaseTable, Projective};
use zkperf_ff::{batch_inverse, BigUint, Goldilocks, PrimeField};
use zkperf_poly::Radix2Domain;
use zkperf_pool as pool;
use zkperf_stark::fri::{fold_layer, fold_pair, LayerDomain};
use zkperf_stark::merkle::{hash_row, verify_path, MerkleTree};
use zkperf_stark::{StarkParams, StarkProof};

use crate::gen::{
    adversarial_circuit, adversarial_field, adversarial_len, adversarial_points,
    adversarial_pow2, adversarial_scalars,
};
use crate::reference::{
    add_mod_biguint, coset_dft_reference, dft_reference, horner, merkle_root_reference,
    merkle_row_digest_reference, msm_double_and_add, mul_mod_biguint, pow_mod_biguint,
    sub_mod_biguint,
};
use crate::rng::SplitRng;

/// A named differential oracle; `run` executes one randomized case.
pub struct Oracle {
    /// Stable identifier used in replay commands and `--only` filters.
    pub name: &'static str,
    /// Runs one case; `Err` carries the divergence detail.
    pub run: fn(&mut SplitRng) -> Result<(), String>,
}

/// Shorthand for oracle bodies.
pub type CaseResult = Result<(), String>;

fn fail(kernel: &str, detail: impl std::fmt::Display) -> CaseResult {
    Err(format!("{kernel}: {detail}"))
}

// ---------------------------------------------------------------- fields

fn field_ops_case<F: PrimeField>(rng: &mut SplitRng) -> CaseResult {
    for _ in 0..16 {
        let a: F = adversarial_field(rng);
        let b: F = adversarial_field(rng);
        if a * b != mul_mod_biguint(a, b) {
            return fail("mont_mul", format_args!("{a} * {b}"));
        }
        if a.square() != mul_mod_biguint(a, a) {
            return fail("mont_sqr", a);
        }
        if a + b != add_mod_biguint(a, b) {
            return fail("mod_add", format_args!("{a} + {b}"));
        }
        if a - b != sub_mod_biguint(a, b) {
            return fail("mod_sub", format_args!("{a} - {b}"));
        }
        if a.double() != add_mod_biguint(a, a) {
            return fail("double", a);
        }
        if !(a + (-a)).is_zero() {
            return fail("neg", a);
        }
        // Montgomery round-trip: canonical limbs must re-embed to the
        // same element.
        if F::from_biguint(&a.to_biguint()) != a {
            return fail("mont_roundtrip", a);
        }
    }
    Ok(())
}

fn field_inverse_case<F: PrimeField>(rng: &mut SplitRng) -> CaseResult {
    // Fermat inverse and pow against BigUint square-and-multiply.
    let a: F = adversarial_field(rng);
    match a.inverse() {
        None if !a.is_zero() => return fail("inverse", format_args!("None for nonzero {a}")),
        Some(inv) if !(a * inv).is_one() => {
            return fail("inverse", format_args!("a * a^-1 != 1 for {a}"));
        }
        _ => {}
    }
    let exp = BigUint::from_u64(rng.gen::<u64>());
    if a.pow(&exp) != pow_mod_biguint(a, &exp) {
        return fail("pow", a);
    }
    // batch_inverse against per-element inversion, zeros preserved.
    let n = adversarial_len(rng, 64);
    let values: Vec<F> = adversarial_scalars(rng, n);
    let mut batched = values.clone();
    batch_inverse(&mut batched);
    for (i, (orig, fast)) in values.iter().zip(&batched).enumerate() {
        let expect = orig.inverse().unwrap_or_else(F::zero);
        if *fast != expect {
            return fail("batch_inverse", format_args!("slot {i} of {n}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- curves

fn msm_case<C: CurveParams>(rng: &mut SplitRng) -> CaseResult {
    let n = adversarial_len(rng, 300);
    let bases: Vec<Affine<C>> = adversarial_points(rng, n);
    let scalars: Vec<C::Scalar> = adversarial_scalars(rng, n);
    let fast = msm(&bases, &scalars);
    let naive = msm_naive(&bases, &scalars);
    if fast != naive {
        return fail("msm vs msm_naive", format_args!("n = {n}"));
    }
    // And both against the shared-nothing double-and-add reference.
    if naive != msm_double_and_add(&bases, &scalars) {
        return fail("msm_naive vs double_and_add", format_args!("n = {n}"));
    }
    // Mismatched slice lengths: documented truncation to the shorter side.
    if n > 1 {
        let truncated = msm(&bases[..n - 1], &scalars);
        let expect = msm_naive(&bases[..n - 1], &scalars[..n - 1]);
        if truncated != expect {
            return fail("msm length truncation", format_args!("n = {n}"));
        }
    }
    Ok(())
}

fn fixed_base_case<C: CurveParams>(rng: &mut SplitRng) -> CaseResult {
    let base = if rng.gen_bool(0.1) {
        Projective::<C>::identity()
    } else {
        Projective::<C>::random(rng)
    };
    let bits = 1 + rng.gen_range(0..10) as usize;
    let table = FixedBaseTable::<C>::with_window_bits(&base, bits);
    let n = adversarial_len(rng, 48).max(1);
    let scalars: Vec<C::Scalar> = adversarial_scalars(rng, n);
    let base_affine = base.to_affine();
    for s in &scalars {
        let expect = crate::reference::scalar_mul_double_and_add(&base_affine, s);
        if table.mul(s) != expect {
            return fail("fixed_base mul", format_args!("window {bits}, scalar {s}"));
        }
    }
    let batch = table.mul_batch(&scalars);
    for (i, (s, got)) in scalars.iter().zip(&batch).enumerate() {
        let expect = crate::reference::scalar_mul_double_and_add(&base_affine, s).to_affine();
        if *got != expect {
            return fail(
                "fixed_base mul_batch",
                format_args!("window {bits}, slot {i}"),
            );
        }
    }
    Ok(())
}

fn batch_to_affine_case<C: CurveParams>(rng: &mut SplitRng) -> CaseResult {
    let n = adversarial_len(rng, 64);
    let points: Vec<Projective<C>> = adversarial_points::<C>(rng, n)
        .iter()
        .map(Affine::to_projective)
        .collect();
    let batch = Projective::batch_to_affine(&points);
    for (i, (p, got)) in points.iter().zip(&batch).enumerate() {
        if *got != p.to_affine() {
            return fail("batch_to_affine", format_args!("slot {i} of {n}"));
        }
    }
    Ok(())
}

// ------------------------------------------------------------------ GLV

/// Folds a signed half-width GLV component into `Z/r`: `|x| mod r`,
/// negated when the sign bit is set.
fn signed_half_mod_r(x: &zkperf_ec::SignedHalf, r: &BigUint) -> BigUint {
    let mag = BigUint::from_limbs(&x.limbs).rem(r);
    if x.neg && !mag.is_zero() {
        r.checked_sub(&mag).expect("mag < r after reduction")
    } else {
        mag
    }
}

/// Scalars that stress the lattice decomposition: the eigenvalue λ and
/// its neighbours (the decomposition pivots there), the full-order scalar
/// `r − 1`, the half-width bound `2^half_bits ± 1` (where `k1` crosses
/// from one to two lattice cells), and the trivial edges.
fn glv_boundary_scalars<C: CurveParams>(glv: &zkperf_ec::GlvParams<C>) -> Vec<C::Scalar> {
    let r = C::Scalar::modulus();
    let lambda = glv.lambda().clone();
    let half_bound = BigUint::one().shl(glv.half_bits());
    let mut raw = vec![
        BigUint::zero(),
        BigUint::one(),
        r.checked_sub(&BigUint::one()).expect("r > 1"),
        lambda.clone(),
        (&lambda + &BigUint::one()).rem(&r),
        lambda
            .checked_sub(&BigUint::one())
            .expect("lambda > 1")
            .rem(&r),
        half_bound.clone(),
    ];
    raw.push((&half_bound + &BigUint::one()).rem(&r));
    raw.push(half_bound.checked_sub(&BigUint::one()).expect("bound > 0"));
    raw.into_iter()
        .map(|x| C::Scalar::from_biguint(&x.rem(&r)))
        .collect()
}

fn glv_decompose_case<C: CurveParams>(rng: &mut SplitRng) -> CaseResult {
    let Some(glv) = C::glv_params() else {
        return fail("glv decompose", "no GLV parameters derived for this group");
    };
    let r = C::Scalar::modulus();
    let lambda = glv.lambda();
    let mut scalars = glv_boundary_scalars::<C>(glv);
    scalars.extend(adversarial_scalars::<C::Scalar>(rng, 24));
    for s in &scalars {
        let d = glv.decompose(s);
        // Identity: k1 + λ·k2 ≡ k (mod r).
        let k1 = signed_half_mod_r(&d.k1, &r);
        let k2 = signed_half_mod_r(&d.k2, &r);
        let recomposed = (&k1 + &(&k2 * lambda).rem(&r)).rem(&r);
        if recomposed != s.to_biguint() {
            return fail("glv decompose identity", format_args!("scalar {s}"));
        }
        // Both components must respect the advertised half-width bound.
        let bound = BigUint::one().shl(glv.half_bits());
        for (name, half) in [("k1", &d.k1), ("k2", &d.k2)] {
            if BigUint::from_limbs(&half.limbs) >= bound {
                return fail(
                    "glv decompose bound",
                    format_args!("{name} exceeds 2^{} for scalar {s}", glv.half_bits()),
                );
            }
        }
    }
    Ok(())
}

fn glv_msm_case<C: CurveParams>(rng: &mut SplitRng) -> CaseResult {
    let Some(glv) = C::glv_params() else {
        return fail("glv msm", "no GLV parameters derived for this group");
    };
    // Boundary scalars first so they always pair with real points, then
    // adversarial filler up to a size that clears the GLV MSM gate.
    let mut scalars = glv_boundary_scalars::<C>(glv);
    let n = scalars.len() + adversarial_len(rng, 48);
    scalars.extend(adversarial_scalars::<C::Scalar>(rng, n - scalars.len()));
    let bases: Vec<Affine<C>> = adversarial_points(rng, n);
    let fast = msm(&bases, &scalars);
    if fast != msm_naive(&bases, &scalars) {
        return fail("glv msm vs msm_naive", format_args!("n = {n}"));
    }
    if fast != msm_double_and_add(&bases, &scalars) {
        return fail("glv msm vs double_and_add", format_args!("n = {n}"));
    }
    Ok(())
}

fn glv_mul_windowed_case<C: CurveParams>(rng: &mut SplitRng) -> CaseResult {
    let Some(glv) = C::glv_params() else {
        return fail("glv mul_windowed", "no GLV parameters derived for this group");
    };
    let r = C::Scalar::modulus();
    let p = if rng.gen_bool(0.1) {
        Projective::<C>::identity()
    } else {
        Projective::<C>::random(rng)
    };
    // Canonical scalars take the GLV Straus route.
    let mut exps: Vec<BigUint> = glv_boundary_scalars::<C>(glv)
        .iter()
        .map(C::Scalar::to_biguint)
        .collect();
    exps.push(adversarial_field::<C::Scalar>(rng).to_biguint());
    // Out-of-range exponents (≥ r) must fall back to the generic window
    // loop and still agree with double-and-add.
    exps.push(r.clone());
    exps.push(&r + &BigUint::from_u64(rng.gen::<u64>()));
    for exp in &exps {
        if p.mul_windowed(exp) != p.mul_bigint(exp) {
            return fail("glv mul_windowed vs mul_bigint", format_args!("exp {exp}"));
        }
    }
    // The interleaved GLV reference pins the decomposition end-to-end.
    let s: C::Scalar = adversarial_field(rng);
    let reference = zkperf_ec::glv::mul_glv_reference(glv, &p, &s);
    if reference != p.mul_bigint(&s.to_biguint()) {
        return fail("glv reference mul", format_args!("scalar {s}"));
    }
    Ok(())
}

// -------------------------------------------------------------- pairing

/// One randomized case of the pairing oracle for a curve module: the
/// twisted fast path against the untwisted serial reference (bit for
/// bit), bilinearity, non-degeneracy, identity and negated inputs, the
/// prepared-lines route, and the documented mismatched-length truncation.
macro_rules! pairing_case {
    ($name:ident, $module:path) => {
        fn $name(rng: &mut SplitRng) -> CaseResult {
            use $module as cv;
            use zkperf_ff::Field;
            type Fr = <cv::G1Params as CurveParams>::Scalar;

            let g1 = Projective::<cv::G1Params>::generator();
            let g2 = Projective::<cv::G2Params>::generator();
            let a: Fr = adversarial_field(rng);
            let b: Fr = adversarial_field(rng);
            let p = (g1 * a).to_affine();
            let q = (g2 * b).to_affine();

            // Fast path against the untwisted serial reference.
            let fast = cv::pairing(&p, &q);
            let reference = zkperf_ec::pairing::final_exponentiation(
                cv::miller(&p, &q),
                &cv::pairing_hard_exponent(),
            );
            if fast != reference {
                return fail("pairing fast vs reference", format_args!("a {a}, b {b}"));
            }

            // Bilinearity: e(cP, Q) = e(P, cQ) = e(P, Q)^c.
            let c: Fr = adversarial_field(rng);
            let expect = fast.pow(&c.to_biguint());
            if cv::pairing(&(p.to_projective() * c).to_affine(), &q) != expect {
                return fail("pairing bilinearity (G1 side)", format_args!("c {c}"));
            }
            if cv::pairing(&p, &(q.to_projective() * c).to_affine()) != expect {
                return fail("pairing bilinearity (G2 side)", format_args!("c {c}"));
            }

            // Non-degeneracy on the generators; identity inputs pair to 1.
            if cv::pairing(&g1.to_affine(), &g2.to_affine()).is_one() {
                return fail("pairing non-degeneracy", "e(G1, G2) = 1");
            }
            let o1 = Affine::<cv::G1Params>::identity();
            let o2 = Affine::<cv::G2Params>::identity();
            if !cv::pairing(&o1, &q).is_one() || !cv::pairing(&p, &o2).is_one() {
                return fail("pairing identity input", "e(O, Q) or e(P, O) != 1");
            }

            // A pair and its G1-negation cancel in one product.
            if !cv::multi_pairing(&[p, p.neg()], &[q, q]).is_one() {
                return fail("pairing negation", format_args!("a {a}, b {b}"));
            }

            // Multi-pairing against the product of individual pairings,
            // over adversarial points (identity / negated / duplicated).
            let n = adversarial_len(rng, 5).max(2);
            let ps: Vec<Affine<cv::G1Params>> = adversarial_points(rng, n);
            let qs: Vec<Affine<cv::G2Params>> = adversarial_points(rng, n);
            let combined = cv::multi_pairing(&ps, &qs);
            let mut product = cv::Gt::one();
            for (pi, qi) in ps.iter().zip(&qs) {
                product *= cv::pairing(pi, qi);
            }
            if combined != product {
                return fail("multi_pairing vs product", format_args!("n = {n}"));
            }

            // The prepared-lines route is the same function.
            let preps: Vec<_> = qs.iter().map(cv::prepare_g2).collect();
            let prep_refs: Vec<_> = preps.iter().collect();
            if cv::multi_pairing_prepared(&ps, &prep_refs) != combined {
                return fail("multi_pairing_prepared", format_args!("n = {n}"));
            }

            // Mismatched slice lengths: documented truncation to the
            // shorter side, from either direction.
            let short = cv::multi_pairing(&ps[..n - 1], &qs[..n - 1]);
            if cv::multi_pairing(&ps[..n - 1], &qs) != short {
                return fail("multi_pairing truncation (short G1)", format_args!("n = {n}"));
            }
            if cv::multi_pairing(&ps, &qs[..n - 1]) != short {
                return fail("multi_pairing truncation (short G2)", format_args!("n = {n}"));
            }
            Ok(())
        }
    };
}

pairing_case!(pairing_bn254_case, zkperf_ec::bn254);
pairing_case!(pairing_bls12_381_case, zkperf_ec::bls12_381);

// ------------------------------------------------------------------ NTT

fn ntt_case<F: PrimeField>(rng: &mut SplitRng) -> CaseResult {
    let size = adversarial_pow2(rng, 8);
    let Some(domain) = Radix2Domain::<F>::new(size) else {
        return fail("ntt", format_args!("no domain of size {size}"));
    };
    let coeffs: Vec<F> = adversarial_scalars(rng, domain.size());

    // Forward transform against the O(n²) DFT.
    let mut evals = coeffs.clone();
    domain.fft_in_place(&mut evals);
    if evals != dft_reference(&domain, &coeffs) {
        return fail("ntt forward vs dft", format_args!("size {size}"));
    }
    // Inverse transform closes the roundtrip.
    let mut round = evals.clone();
    domain.ifft_in_place(&mut round);
    if round != coeffs {
        return fail("ntt ifft roundtrip", format_args!("size {size}"));
    }
    // Coset transform against the shifted DFT.
    let mut coset = coeffs.clone();
    domain.coset_fft_in_place(&mut coset);
    if coset != coset_dft_reference(&domain, &coeffs) {
        return fail("coset ntt vs dft", format_args!("size {size}"));
    }
    let mut coset_round = coset;
    domain.coset_ifft_in_place(&mut coset_round);
    if coset_round != coeffs {
        return fail("coset ifft roundtrip", format_args!("size {size}"));
    }
    // element(i) — served from the cached twiddle table — against an
    // independent ω power run.
    let mut x = F::one();
    for i in 0..domain.size() {
        if domain.element(i) != x {
            return fail("domain element", format_args!("i = {i}, size {size}"));
        }
        x *= domain.group_gen();
    }
    Ok(())
}

fn ntt_four_step_case<F: PrimeField>(rng: &mut SplitRng) -> CaseResult {
    // The blocked four-step layout only engages automatically at 2^18,
    // far too big for a fuzz case — the forced entry points run the same
    // index algebra at small sizes against the flat radix-2 transform
    // (itself pinned to the O(n²) DFT by `ntt_case`).
    let size = adversarial_pow2(rng, 8).max(4);
    let Some(domain) = Radix2Domain::<F>::new(size) else {
        return fail("ntt four_step", format_args!("no domain of size {size}"));
    };
    let coeffs: Vec<F> = adversarial_scalars(rng, domain.size());

    let mut flat = coeffs.clone();
    domain.fft_in_place_radix2(&mut flat);
    let mut blocked = coeffs.clone();
    domain.fft_in_place_four_step(&mut blocked);
    if flat != blocked {
        return fail("ntt four_step forward", format_args!("size {size}"));
    }
    let mut round = blocked;
    domain.ifft_in_place_four_step(&mut round);
    if round != coeffs {
        return fail("ntt four_step roundtrip", format_args!("size {size}"));
    }
    let mut inv_flat = flat.clone();
    domain.ifft_in_place_radix2(&mut inv_flat);
    let mut inv_blocked = flat;
    domain.ifft_in_place_four_step(&mut inv_blocked);
    if inv_flat != inv_blocked {
        return fail("ntt four_step inverse", format_args!("size {size}"));
    }
    Ok(())
}

fn lagrange_case<F: PrimeField>(rng: &mut SplitRng) -> CaseResult {
    let size = adversarial_pow2(rng, 6);
    let Some(domain) = Radix2Domain::<F>::new(size) else {
        return fail("lagrange", format_args!("no domain of size {size}"));
    };
    let evals: Vec<F> = adversarial_scalars(rng, domain.size());
    // At a random point: Σ Lᵢ(x)·evalsᵢ must equal the interpolated
    // polynomial evaluated there (IFFT + Horner reference).
    let x: F = if rng.gen_bool(0.25) {
        // In-domain x exercises the indicator special case.
        domain.element(rng.gen_range(0..domain.size() as u64) as usize)
    } else {
        F::random(rng)
    };
    let lag = domain.lagrange_coefficients_at(x);
    let via_lagrange: F = lag.iter().zip(&evals).map(|(l, e)| *l * *e).sum();
    let mut coeffs = evals.clone();
    domain.ifft_in_place(&mut coeffs);
    if via_lagrange != horner(&coeffs, x) {
        return fail("lagrange_coefficients_at", format_args!("size {size}"));
    }
    Ok(())
}

// -------------------------------------------------------------- threads

/// Restores the pool to one thread even when the comparison fails.
struct ThreadGuard;
impl Drop for ThreadGuard {
    fn drop(&mut self) {
        pool::set_threads(1);
    }
}

fn threads_msm_case<C: CurveParams>(rng: &mut SplitRng) -> CaseResult {
    let _guard = ThreadGuard;
    // Past the parallel gate (1 << 10), with an odd tail.
    let n = (1 << 10) + 1 + rng.gen_range(0..200) as usize;
    let bases: Vec<Affine<C>> = adversarial_points(rng, n);
    let scalars: Vec<C::Scalar> = adversarial_scalars(rng, n);
    pool::set_threads(1);
    let serial = msm(&bases, &scalars).to_affine();
    for threads in [2usize, 4] {
        pool::set_threads(threads);
        let par = msm(&bases, &scalars).to_affine();
        if par != serial {
            return fail("threads msm", format_args!("{threads} threads, n = {n}"));
        }
    }
    Ok(())
}

fn threads_ntt_case<F: PrimeField>(rng: &mut SplitRng) -> CaseResult {
    let _guard = ThreadGuard;
    // At the parallel gate (2^12).
    let Some(domain) = Radix2Domain::<F>::new(1 << 12) else {
        return fail("threads ntt", "no 2^12 domain");
    };
    let coeffs: Vec<F> = adversarial_scalars(rng, domain.size());
    pool::set_threads(1);
    let mut serial = coeffs.clone();
    domain.coset_fft_in_place(&mut serial);
    domain.ifft_in_place(&mut serial);
    for threads in [2usize, 4] {
        pool::set_threads(threads);
        let mut par = coeffs.clone();
        domain.coset_fft_in_place(&mut par);
        domain.ifft_in_place(&mut par);
        if par != serial {
            return fail("threads ntt", format_args!("{threads} threads"));
        }
    }
    Ok(())
}

fn threads_fixed_base_case<C: CurveParams>(rng: &mut SplitRng) -> CaseResult {
    let _guard = ThreadGuard;
    // Past the one-chunk gate (2048 scalars per chunk), with a ragged tail.
    let n = 2048 + 1 + rng.gen_range(0..300) as usize;
    let base = Projective::<C>::random(rng);
    let table = FixedBaseTable::<C>::for_batch(&base, n);
    let scalars: Vec<C::Scalar> = adversarial_scalars(rng, n);
    pool::set_threads(1);
    let serial = table.mul_batch(&scalars);
    pool::set_threads(4);
    let parallel = table.mul_batch(&scalars);
    if serial != parallel {
        return fail("threads fixed_base", format_args!("n = {n}"));
    }
    Ok(())
}

fn threads_groth16_case<E: Engine>(rng: &mut SplitRng) -> CaseResult {
    let _guard = ThreadGuard;
    let (circuit, witness) = adversarial_circuit::<E::Fr>(rng);
    let proof_at = |threads: usize, rng: &SplitRng| {
        pool::set_threads(threads);
        // Clone the RNG so both legs see the identical randomness stream
        // for setup *and* prove: any output difference is then a real
        // thread-count divergence, not sampling noise.
        let mut local = rng.clone();
        let pk = zkperf_groth16::setup::<E, _>(circuit.r1cs(), &mut local)
            .map_err(|e| format!("setup failed: {e}"))?;
        let proof = zkperf_groth16::prove::<E, _>(&pk, circuit.r1cs(), &witness, &mut local)
            .map_err(|e| format!("prove failed: {e}"))?;
        Ok::<_, String>((pk, proof))
    };
    let (pk1, serial) = proof_at(1, rng)?;
    let (pk4, parallel) = proof_at(4, rng)?;
    if pk1.vk != pk4.vk {
        return fail("threads groth16", "verifying keys diverge across thread counts");
    }
    if serial != parallel {
        return fail("threads groth16", "proofs diverge across thread counts");
    }
    pool::set_threads(1);
    match zkperf_groth16::verify::<E>(&pk1.vk, &serial, witness.public()) {
        Ok(true) => Ok(()),
        other => fail("threads groth16", format_args!("valid proof rejected: {other:?}")),
    }
}

// ------------------------------------------------------------ protocols

fn groth16_roundtrip_case<E: Engine>(rng: &mut SplitRng) -> CaseResult {
    let (circuit, witness) = adversarial_circuit::<E::Fr>(rng);
    let pk = zkperf_groth16::setup::<E, _>(circuit.r1cs(), rng)
        .map_err(|e| format!("setup failed: {e}"))?;
    let proof = zkperf_groth16::prove::<E, _>(&pk, circuit.r1cs(), &witness, rng)
        .map_err(|e| format!("prove failed: {e}"))?;
    match zkperf_groth16::verify::<E>(&pk.vk, &proof, witness.public()) {
        Ok(true) => Ok(()),
        other => fail(
            "groth16 roundtrip",
            format_args!("valid proof rejected: {other:?} ({})", circuit.name()),
        ),
    }
}

fn plonk_roundtrip_case<E: Engine>(rng: &mut SplitRng) -> CaseResult
where
    <E::G1 as CurveParams>::Base: PrimeField,
{
    let (circuit, witness) = adversarial_circuit::<E::Fr>(rng);
    let pk = zkperf_plonk::plonk_setup::<E, _>(circuit.r1cs(), rng)
        .map_err(|e| format!("setup failed: {e}"))?;
    let proof =
        zkperf_plonk::plonk_prove(&pk, witness.full()).map_err(|e| format!("prove failed: {e}"))?;
    if !zkperf_plonk::plonk_verify(pk.vk(), &proof, witness.public()) {
        return fail(
            "plonk roundtrip",
            format_args!("valid proof rejected ({})", circuit.name()),
        );
    }
    Ok(())
}

// ------------------------------------------------------------- streaming

/// Restores the ambient memory budget on drop, so a budgeted case can't
/// leak its budget into the rest of the sweep.
struct BudgetGuard(Option<u64>);

impl BudgetGuard {
    fn set(bytes: Option<u64>) -> BudgetGuard {
        let prev = pool::mem::budget();
        pool::mem::set_budget(bytes);
        BudgetGuard(prev)
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        pool::mem::set_budget(self.0);
    }
}

fn stream_msm_case<C: CurveParams>(rng: &mut SplitRng) -> CaseResult {
    let n = adversarial_len(rng, 300).max(3);
    let bases: Vec<Affine<C>> = adversarial_points(rng, n);
    let scalars: Vec<C::Scalar> = adversarial_scalars(rng, n);
    let expect = msm(&bases, &scalars);
    // Degenerate (1), prime-stride (13), and boundary-straddling chunk
    // layouts; n+7 exercises a final chunk larger than the tail.
    for chunk in [1usize, 13, n - 1, n, n + 7] {
        let got = msm_stream(
            n,
            bases.chunks(chunk).map(Ok::<_, std::convert::Infallible>),
            &scalars,
        )
        .unwrap_or_else(|e| match e {});
        if got != expect {
            return fail("msm_stream", format_args!("chunk = {chunk}, n = {n}"));
        }
    }
    Ok(())
}

fn stream_budget_groth16_case<E: Engine>(rng: &mut SplitRng) -> CaseResult {
    let (circuit, witness) = adversarial_circuit::<E::Fr>(rng);
    let run = |budget: Option<u64>, rng: &SplitRng| {
        let _b = BudgetGuard::set(budget);
        // Clone the RNG so both legs see the identical randomness stream;
        // any divergence is then a real budget-path difference.
        let mut local = rng.clone();
        let pk = zkperf_groth16::setup::<E, _>(circuit.r1cs(), &mut local)
            .map_err(|e| format!("setup failed: {e}"))?;
        let proof = zkperf_groth16::prove::<E, _>(&pk, circuit.r1cs(), &witness, &mut local)
            .map_err(|e| format!("prove failed: {e}"))?;
        Ok::<_, String>((pk, proof))
    };
    let (ref_pk, ref_proof) = run(None, rng)?;
    // A budget this small forces the chunked path on every query.
    let (pk, proof) = run(Some(1 << 16), rng)?;
    if pk != ref_pk {
        return fail("stream budget groth16", "budgeted setup key diverges from in-memory");
    }
    if proof != ref_proof {
        return fail("stream budget groth16", "budgeted proof diverges from in-memory");
    }
    Ok(())
}

fn stream_threads_case<E: Engine>(rng: &mut SplitRng) -> CaseResult {
    let _guard = ThreadGuard;
    let _b = BudgetGuard::set(Some(1 << 16));
    let (circuit, witness) = adversarial_circuit::<E::Fr>(rng);
    let chunk = 1 + rng.gen_range(0..50) as usize;
    let mut sink = zkperf_groth16::MemorySink::<E>::new();
    let mut setup_rng = rng.clone();
    zkperf_groth16::setup_streamed::<E, _, _>(circuit.r1cs(), &mut setup_rng, chunk, &mut sink)
        .map_err(|e| format!("setup_streamed failed: {e}"))?;
    let pk = sink
        .into_proving_key()
        .ok_or_else(|| "setup_streamed left the sink incomplete".to_string())?;
    let src = zkperf_groth16::ChunkedKey::new(&pk, chunk);
    let proof_at = |threads: usize, rng: &SplitRng| {
        pool::set_threads(threads);
        let mut local = rng.clone();
        zkperf_groth16::prove_streamed::<E, _, _>(&src, circuit.r1cs(), &witness, &mut local)
            .map_err(|e| format!("prove_streamed failed: {e}"))
    };
    let serial = proof_at(1, rng)?;
    for threads in [2usize, 4] {
        let par = proof_at(threads, rng)?;
        if par != serial {
            return fail(
                "stream threads",
                format_args!("{threads} threads, chunk = {chunk}"),
            );
        }
    }
    Ok(())
}

fn stream_file_roundtrip_case<E: Engine>(rng: &mut SplitRng) -> CaseResult
where
    <E::G1 as CurveParams>::Base: zkperf_io::FieldCodec,
    <E::G2 as CurveParams>::Base: zkperf_io::FieldCodec,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);

    let (circuit, witness) = adversarial_circuit::<E::Fr>(rng);
    let chunk = 1 + rng.gen_range(0..40) as usize;
    // In-memory reference under the identical randomness stream.
    let mut ref_rng = rng.clone();
    let ref_pk = zkperf_groth16::setup::<E, _>(circuit.r1cs(), &mut ref_rng)
        .map_err(|e| format!("setup failed: {e}"))?;
    let ref_proof = zkperf_groth16::prove::<E, _>(&ref_pk, circuit.r1cs(), &witness, &mut ref_rng)
        .map_err(|e| format!("prove failed: {e}"))?;
    // Streamed to disk and proved back off the file.
    let path = std::env::temp_dir().join(format!(
        "zkperf_fuzz_{}_{}.zks",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut local = rng.clone();
    let streamed = (|| {
        let mut writer = zkperf_io::StreamedZkeyWriter::<E>::create(&path)
            .map_err(|e| format!("writer create failed: {e}"))?;
        let vk =
            zkperf_groth16::setup_streamed::<E, _, _>(circuit.r1cs(), &mut local, chunk, &mut writer)
                .map_err(|e| format!("setup_streamed failed: {e}"))?;
        let reader = zkperf_io::StreamedZkeyReader::<E>::open(&path)
            .map_err(|e| format!("reader open failed: {e}"))?;
        let proof =
            zkperf_groth16::prove_streamed::<E, _, _>(&reader, circuit.r1cs(), &witness, &mut local)
                .map_err(|e| format!("prove_streamed failed: {e}"))?;
        Ok::<_, String>((vk, proof))
    })();
    let _ = std::fs::remove_file(&path);
    let (vk, proof) = streamed?;
    if vk != ref_pk.vk {
        return fail(
            "stream file roundtrip",
            format_args!("vk diverges from in-memory setup (chunk = {chunk})"),
        );
    }
    if proof != ref_proof {
        return fail(
            "stream file roundtrip",
            format_args!("proof off the streamed file diverges (chunk = {chunk})"),
        );
    }
    Ok(())
}

// --------------------------------------------------------------- stark

/// The transparent backend's commitment layer against a shared-nothing
/// reference: row digests re-derived by an explicit sponge fold, the root
/// by recursive halving, every opening re-verified and tampered openings
/// refused.
fn stark_merkle_case(rng: &mut SplitRng) -> CaseResult {
    use zkperf_ff::Field;
    type F = Goldilocks;
    let leaves = adversarial_pow2(rng, 6);
    let width = adversarial_len(rng, 5);
    let rows: Vec<Vec<F>> = (0..leaves)
        .map(|_| adversarial_scalars(rng, width))
        .collect();
    let tree = MerkleTree::from_rows(leaves, |i| rows[i].clone());
    let digests: Vec<F> = rows.iter().map(|r| merkle_row_digest_reference(r)).collect();
    for (i, row) in rows.iter().enumerate() {
        if hash_row(row) != digests[i] {
            return fail("stark merkle row digest", format_args!("row {i}, width {width}"));
        }
    }
    if tree.root() != merkle_root_reference(&digests) {
        return fail(
            "stark merkle root vs recursive reference",
            format_args!("{leaves} leaves, width {width}"),
        );
    }
    for (i, digest) in digests.iter().enumerate() {
        let path = tree.open(i);
        if !verify_path(tree.root(), i, *digest, &path) {
            return fail("stark merkle open", format_args!("leaf {i} of {leaves}"));
        }
        if verify_path(tree.root(), i, *digest + F::one(), &path) {
            return fail(
                "stark merkle tampered leaf accepted",
                format_args!("leaf {i} of {leaves}"),
            );
        }
    }
    Ok(())
}

/// One FRI fold against the even/odd polynomial decomposition it claims
/// to implement: `f(x) = e(x²) + x·o(x²)` folds to `e + β·o`, so the
/// folded codeword must equal a direct Horner evaluation of `e + β·o` on
/// the squared coset — coefficients, points and evaluation all derived
/// independently of the fold kernel.
fn stark_fri_fold_case(rng: &mut SplitRng) -> CaseResult {
    type F = Goldilocks;
    let size = adversarial_pow2(rng, 7).max(2);
    let Some(domain) = Radix2Domain::<F>::new(size) else {
        return fail("stark fri fold", format_args!("no domain of size {size}"));
    };
    let layer = LayerDomain {
        shift: domain.coset_shift(),
        omega: domain.group_gen(),
        size,
    };
    let coeffs: Vec<F> = adversarial_scalars(rng, size);
    // The input codeword: Horner on an independent ω power run, never
    // through the NTT or the layer's own element().
    let mut values = Vec::with_capacity(size);
    let mut x = layer.shift;
    for _ in 0..size {
        values.push(horner(&coeffs, x));
        x *= layer.omega;
    }
    let beta: F = adversarial_field(rng);
    let folded = fold_layer(&values, beta, &layer);
    let even: Vec<F> = coeffs.iter().copied().step_by(2).collect();
    let odd: Vec<F> = coeffs.iter().copied().skip(1).step_by(2).collect();
    let mut y = layer.shift * layer.shift;
    let omega2 = layer.omega * layer.omega;
    for (i, got) in folded.iter().enumerate() {
        let want = horner(&even, y) + beta * horner(&odd, y);
        if *got != want {
            return fail(
                "stark fri fold vs poly eval",
                format_args!("slot {i}, size {size}"),
            );
        }
        // The verifier-side pairwise fold is the same function.
        if fold_pair(values[i], values[i + size / 2], beta, &layer, i) != *got {
            return fail("stark fri fold_pair", format_args!("slot {i}, size {size}"));
        }
        y *= omega2;
    }
    Ok(())
}

/// End-to-end transparent pipeline on an adversarial circuit: prove,
/// verify, and close the proof byte codec roundtrip.
fn stark_roundtrip_case(rng: &mut SplitRng) -> CaseResult {
    let (circuit, witness) = adversarial_circuit::<Goldilocks>(rng);
    let params = StarkParams {
        blowup: 4,
        num_queries: 8,
    };
    let proof = zkperf_stark::prove(circuit.r1cs(), witness.full(), &params)
        .map_err(|e| format!("stark prove failed: {e}"))?;
    zkperf_stark::verify(circuit.r1cs(), witness.public(), &proof, &params)
        .map_err(|e| format!("stark roundtrip: valid proof rejected: {e} ({})", circuit.name()))?;
    let bytes = proof.encode();
    let decoded =
        StarkProof::decode(&bytes).map_err(|e| format!("stark codec decode failed: {e}"))?;
    if decoded != proof {
        return fail("stark codec roundtrip", circuit.name());
    }
    Ok(())
}

/// Merkle construction and FRI folding at sizes past the pool grain,
/// byte-compared across 1/2/4-thread pools.
fn stark_threads_case(rng: &mut SplitRng) -> CaseResult {
    let _guard = ThreadGuard;
    type F = Goldilocks;
    // 2^10 leaves clears the merkle grain (64) and the fold grain (256).
    let size = 1 << 10;
    let Some(domain) = Radix2Domain::<F>::new(size) else {
        return fail("stark threads", "no 2^10 domain");
    };
    let layer = LayerDomain {
        shift: domain.coset_shift(),
        omega: domain.group_gen(),
        size,
    };
    let values: Vec<F> = adversarial_scalars(rng, size);
    let beta: F = adversarial_field(rng);
    pool::set_threads(1);
    let fold_serial = fold_layer(&values, beta, &layer);
    let root_serial = MerkleTree::from_rows(size, |i| vec![values[i]]).root();
    for threads in [2usize, 4] {
        pool::set_threads(threads);
        if fold_layer(&values, beta, &layer) != fold_serial {
            return fail("stark threads fold", format_args!("{threads} threads"));
        }
        if MerkleTree::from_rows(size, |i| vec![values[i]]).root() != root_serial {
            return fail("stark threads merkle", format_args!("{threads} threads"));
        }
    }
    Ok(())
}

// ------------------------------------------------------------ inventory

/// The full oracle inventory, one entry per (kernel, instantiation).
pub fn all_oracles() -> Vec<Oracle> {
    use zkperf_ec::{bls12_381, bn254};
    use zkperf_ff::{bls12_381 as ffbls, bn254 as ffbn};
    vec![
        Oracle {
            name: "field_ops_bn254_fr",
            run: field_ops_case::<ffbn::Fr>,
        },
        Oracle {
            name: "field_ops_bn254_fq",
            run: field_ops_case::<ffbn::Fq>,
        },
        Oracle {
            name: "field_ops_bls12_381_fr",
            run: field_ops_case::<ffbls::Fr>,
        },
        Oracle {
            name: "field_ops_bls12_381_fq",
            run: field_ops_case::<ffbls::Fq>,
        },
        Oracle {
            name: "field_inverse_bn254_fr",
            run: field_inverse_case::<ffbn::Fr>,
        },
        Oracle {
            name: "field_inverse_bls12_381_fr",
            run: field_inverse_case::<ffbls::Fr>,
        },
        Oracle {
            name: "msm_bn254_g1",
            run: msm_case::<bn254::G1Params>,
        },
        Oracle {
            name: "msm_bn254_g2",
            run: msm_case::<bn254::G2Params>,
        },
        Oracle {
            name: "msm_bls12_381_g1",
            run: msm_case::<bls12_381::G1Params>,
        },
        Oracle {
            name: "fixed_base_bn254_g1",
            run: fixed_base_case::<bn254::G1Params>,
        },
        Oracle {
            name: "fixed_base_bls12_381_g1",
            run: fixed_base_case::<bls12_381::G1Params>,
        },
        Oracle {
            name: "batch_to_affine_bn254_g1",
            run: batch_to_affine_case::<bn254::G1Params>,
        },
        Oracle {
            name: "glv_decompose_bn254_g1",
            run: glv_decompose_case::<bn254::G1Params>,
        },
        Oracle {
            name: "glv_decompose_bls12_381_g1",
            run: glv_decompose_case::<bls12_381::G1Params>,
        },
        Oracle {
            name: "glv_msm_bn254_g1",
            run: glv_msm_case::<bn254::G1Params>,
        },
        Oracle {
            name: "glv_msm_bls12_381_g1",
            run: glv_msm_case::<bls12_381::G1Params>,
        },
        Oracle {
            name: "glv_mul_windowed_bn254_g1",
            run: glv_mul_windowed_case::<bn254::G1Params>,
        },
        Oracle {
            name: "pairing_bn254",
            run: pairing_bn254_case,
        },
        Oracle {
            name: "pairing_bls12_381",
            run: pairing_bls12_381_case,
        },
        Oracle {
            name: "ntt_bn254_fr",
            run: ntt_case::<ffbn::Fr>,
        },
        Oracle {
            name: "ntt_four_step_bn254_fr",
            run: ntt_four_step_case::<ffbn::Fr>,
        },
        Oracle {
            name: "ntt_four_step_bls12_381_fr",
            run: ntt_four_step_case::<ffbls::Fr>,
        },
        Oracle {
            name: "ntt_bls12_381_fr",
            run: ntt_case::<ffbls::Fr>,
        },
        Oracle {
            name: "lagrange_bn254_fr",
            run: lagrange_case::<ffbn::Fr>,
        },
        Oracle {
            name: "threads_msm_bn254_g1",
            run: threads_msm_case::<bn254::G1Params>,
        },
        Oracle {
            name: "threads_ntt_bn254_fr",
            run: threads_ntt_case::<ffbn::Fr>,
        },
        Oracle {
            name: "threads_fixed_base_bn254_g1",
            run: threads_fixed_base_case::<bn254::G1Params>,
        },
        Oracle {
            name: "threads_groth16_bn254",
            run: threads_groth16_case::<zkperf_ec::Bn254>,
        },
        Oracle {
            name: "groth16_roundtrip_bn254",
            run: groth16_roundtrip_case::<zkperf_ec::Bn254>,
        },
        Oracle {
            name: "groth16_roundtrip_bls12_381",
            run: groth16_roundtrip_case::<zkperf_ec::Bls12_381>,
        },
        Oracle {
            name: "plonk_roundtrip_bn254",
            run: plonk_roundtrip_case::<zkperf_ec::Bn254>,
        },
        Oracle {
            name: "stream_msm_bn254_g1",
            run: stream_msm_case::<bn254::G1Params>,
        },
        Oracle {
            name: "stream_msm_bn254_g2",
            run: stream_msm_case::<bn254::G2Params>,
        },
        Oracle {
            name: "stream_msm_bls12_381_g1",
            run: stream_msm_case::<bls12_381::G1Params>,
        },
        Oracle {
            name: "stream_budget_groth16_bn254",
            run: stream_budget_groth16_case::<zkperf_ec::Bn254>,
        },
        Oracle {
            name: "stream_budget_groth16_bls12_381",
            run: stream_budget_groth16_case::<zkperf_ec::Bls12_381>,
        },
        Oracle {
            name: "stream_threads_groth16_bn254",
            run: stream_threads_case::<zkperf_ec::Bn254>,
        },
        Oracle {
            name: "stream_file_roundtrip_bn254",
            run: stream_file_roundtrip_case::<zkperf_ec::Bn254>,
        },
        Oracle {
            name: "stark_goldilocks_field_ops",
            run: field_ops_case::<Goldilocks>,
        },
        Oracle {
            name: "stark_goldilocks_inverse",
            run: field_inverse_case::<Goldilocks>,
        },
        Oracle {
            name: "stark_merkle_vs_reference",
            run: stark_merkle_case,
        },
        Oracle {
            name: "stark_fri_fold_vs_poly_eval",
            run: stark_fri_fold_case,
        },
        Oracle {
            name: "stark_roundtrip_goldilocks",
            run: stark_roundtrip_case,
        },
        Oracle {
            name: "stark_threads_merkle_fold",
            run: stark_threads_case,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_names_are_unique_and_wellformed() {
        let oracles = all_oracles();
        let mut seen = std::collections::HashSet::new();
        for o in &oracles {
            assert!(seen.insert(o.name), "duplicate oracle name {}", o.name);
            assert!(
                o.name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "name {} unusable in a shell replay line",
                o.name
            );
        }
        assert!(oracles.len() >= 20);
    }

    #[test]
    fn cheap_oracles_pass_one_case() {
        // The full sweep lives in the integration suite and fuzz_lite;
        // here just one case of the pure-field oracles as a smoke check.
        for name in [
            "field_ops_bn254_fr",
            "field_inverse_bn254_fr",
            "ntt_bn254_fr",
        ] {
            let o = all_oracles()
                .into_iter()
                .find(|o| o.name == name)
                .expect("inventory contains the oracle");
            let mut rng = crate::rng::case_rng(0xfeed, name, 0);
            assert_eq!((o.run)(&mut rng), Ok(()), "{name}");
        }
    }
}
