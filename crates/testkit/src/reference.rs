//! Slow, obviously-correct reference implementations.
//!
//! Each optimized kernel in the workspace is pinned against one of these
//! in `oracles`. The references deliberately share *no* code with the
//! fast paths: field arithmetic goes through [`BigUint`] schoolbook
//! operations, scalar multiplication is plain double-and-add, and
//! polynomial evaluation is the O(n²) definition — so a bug in the
//! optimized Montgomery/window/butterfly machinery cannot cancel itself
//! out on both sides of a comparison.

use zkperf_circuit::poseidon::poseidon_hash2;
use zkperf_ec::{Affine, CurveParams, Projective};
use zkperf_ff::{BigUint, Field, Goldilocks, PrimeField};
use zkperf_poly::Radix2Domain;

/// `a · b mod p` via canonical [`BigUint`] schoolbook multiplication.
pub fn mul_mod_biguint<F: PrimeField>(a: F, b: F) -> F {
    let product = &a.to_biguint() * &b.to_biguint();
    F::from_biguint(&product.rem(&F::modulus()))
}

/// `a + b mod p` via canonical [`BigUint`] arithmetic.
pub fn add_mod_biguint<F: PrimeField>(a: F, b: F) -> F {
    let sum = &a.to_biguint() + &b.to_biguint();
    F::from_biguint(&sum.rem(&F::modulus()))
}

/// `a − b mod p` via canonical [`BigUint`] arithmetic (lift by `p` first).
pub fn sub_mod_biguint<F: PrimeField>(a: F, b: F) -> F {
    let lifted = &a.to_biguint() + &F::modulus();
    let diff = lifted
        .checked_sub(&b.to_biguint())
        .expect("a + p >= b for canonical a, b");
    F::from_biguint(&diff.rem(&F::modulus()))
}

/// `scalar · base` by textbook double-and-add over the canonical scalar
/// bits — no windows, no signed digits, no tables.
pub fn scalar_mul_double_and_add<C: CurveParams>(
    base: &Affine<C>,
    scalar: &C::Scalar,
) -> Projective<C> {
    let exp = scalar.to_biguint();
    let mut acc = Projective::<C>::identity();
    for i in (0..exp.bits()).rev() {
        acc = acc.double();
        if exp.bit(i) {
            acc = acc.add_mixed(base);
        }
    }
    acc
}

/// `Σ scalarsᵢ · basesᵢ` at double-and-add cost, truncating to the
/// shorter slice exactly like the optimized kernel's documented contract.
pub fn msm_double_and_add<C: CurveParams>(
    bases: &[Affine<C>],
    scalars: &[C::Scalar],
) -> Projective<C> {
    let n = bases.len().min(scalars.len());
    let mut acc = Projective::<C>::identity();
    for i in 0..n {
        acc += scalar_mul_double_and_add(&bases[i], &scalars[i]);
    }
    acc
}

/// Evaluates the polynomial with coefficient vector `coeffs` at every
/// domain point by Horner's rule — the O(n²) DFT definition the NTT must
/// agree with. Domain points are walked as an independent `ω` power run
/// (never through the domain's cached twiddle tables, which are
/// themselves under test).
pub fn dft_reference<F: PrimeField>(domain: &Radix2Domain<F>, coeffs: &[F]) -> Vec<F> {
    let omega = domain.group_gen();
    let mut out = Vec::with_capacity(domain.size());
    let mut x = F::one();
    for _ in 0..domain.size() {
        out.push(horner(coeffs, x));
        x *= omega;
    }
    out
}

/// [`dft_reference`] over the coset `g·H`: evaluates at `g·ω^i`.
pub fn coset_dft_reference<F: PrimeField>(domain: &Radix2Domain<F>, coeffs: &[F]) -> Vec<F> {
    let omega = domain.group_gen();
    let mut out = Vec::with_capacity(domain.size());
    let mut x = domain.coset_shift();
    for _ in 0..domain.size() {
        out.push(horner(coeffs, x));
        x *= omega;
    }
    out
}

/// Horner evaluation of `coeffs` (low-to-high) at `x`.
pub fn horner<F: Field>(coeffs: &[F], x: F) -> F {
    let mut acc = F::zero();
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Compresses one Merkle leaf row exactly as the STARK commitment layer
/// defines it — a zero-initialized [`poseidon_hash2`] chain — but written
/// as an explicit fold rather than through `zkperf_stark::merkle`.
pub fn merkle_row_digest_reference(row: &[Goldilocks]) -> Goldilocks {
    row.iter()
        .fold(Goldilocks::zero(), |acc, v| poseidon_hash2(acc, *v))
}

/// The Merkle root over a power-of-two leaf-digest slice by recursive
/// halving — a shared-nothing re-derivation of the tree the parallel
/// level-by-level builder in `zkperf_stark::merkle` commits to.
///
/// # Panics
///
/// Panics on an empty slice; callers supply domain-sized (power-of-two)
/// leaf sets.
pub fn merkle_root_reference(digests: &[Goldilocks]) -> Goldilocks {
    match digests.len() {
        0 => panic!("reference Merkle root of zero leaves"),
        1 => digests[0],
        n => {
            let (lo, hi) = digests.split_at(n / 2);
            poseidon_hash2(merkle_root_reference(lo), merkle_root_reference(hi))
        }
    }
}

/// `base^exp mod p` on canonical integers (square-and-multiply over
/// [`BigUint`]), for pinning [`Field::pow`] and Fermat inversion.
pub fn pow_mod_biguint<F: PrimeField>(base: F, exp: &BigUint) -> F {
    let p = F::modulus();
    let mut acc = BigUint::one();
    let b = base.to_biguint();
    for i in (0..exp.bits()).rev() {
        acc = (&acc * &acc).rem(&p);
        if exp.bit(i) {
            acc = (&acc * &b).rem(&p);
        }
    }
    F::from_biguint(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkperf_ec::bn254::{G1Affine, G1Projective};
    use zkperf_ff::bn254::Fr;

    #[test]
    fn references_agree_with_each_other_on_small_values() {
        // Self-consistency of the reference layer itself, on values small
        // enough to verify by inspection.
        let a = Fr::from_u64(6);
        let b = Fr::from_u64(7);
        assert_eq!(mul_mod_biguint(a, b), Fr::from_u64(42));
        assert_eq!(add_mod_biguint(a, b), Fr::from_u64(13));
        assert_eq!(sub_mod_biguint(b, a), Fr::from_u64(1));
        // 6 − 7 wraps to p − 1.
        assert_eq!(sub_mod_biguint(a, b), -Fr::one());
    }

    #[test]
    fn double_and_add_small_multiples() {
        let g = G1Affine::generator();
        assert!(scalar_mul_double_and_add(&g, &Fr::zero()).is_identity());
        assert_eq!(scalar_mul_double_and_add(&g, &Fr::one()).to_affine(), g);
        let five = scalar_mul_double_and_add(&g, &Fr::from_u64(5));
        let mut acc = G1Projective::identity();
        for _ in 0..5 {
            acc = acc.add_mixed(&g);
        }
        assert_eq!(five, acc);
    }

    #[test]
    fn horner_matches_manual_expansion() {
        // 3 + 2x + x² at x = 5 → 3 + 10 + 25 = 38.
        let coeffs = [Fr::from_u64(3), Fr::from_u64(2), Fr::from_u64(1)];
        assert_eq!(horner(&coeffs, Fr::from_u64(5)), Fr::from_u64(38));
        assert_eq!(horner(&[], Fr::from_u64(5)), Fr::zero());
    }

    #[test]
    fn merkle_reference_matches_a_hand_built_tree() {
        type G = Goldilocks;
        let leaves: Vec<G> = (0..4).map(G::from_u64).collect();
        let l = poseidon_hash2(leaves[0], leaves[1]);
        let r = poseidon_hash2(leaves[2], leaves[3]);
        assert_eq!(merkle_root_reference(&leaves), poseidon_hash2(l, r));
        assert_eq!(merkle_root_reference(&leaves[..1]), leaves[0]);
        // The row digest is the zero-seeded sponge chain.
        assert_eq!(merkle_row_digest_reference(&[]), G::zero());
        assert_eq!(
            merkle_row_digest_reference(&leaves[..2]),
            poseidon_hash2(poseidon_hash2(G::zero(), leaves[0]), leaves[1])
        );
    }

    #[test]
    fn pow_mod_matches_small_cases() {
        let b = Fr::from_u64(3);
        assert_eq!(pow_mod_biguint(b, &BigUint::from_u64(4)), Fr::from_u64(81));
        assert!(pow_mod_biguint(b, &BigUint::zero()).is_one());
    }
}
