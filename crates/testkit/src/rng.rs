//! Deterministic splittable PRNG for replayable fuzz campaigns.
//!
//! Every randomized case in the testkit is addressed by three values: the
//! campaign's **root seed**, the **oracle name**, and the **case index**.
//! [`case_rng`] maps that triple to an independent generator, so a failure
//! report of `(seed, oracle, case)` replays the exact byte stream that
//! produced it — no shared-stream coupling where adding an oracle or
//! reordering a loop shifts every later case.
//!
//! The generator is SplitMix64 with an odd per-stream gamma (Steele,
//! Lea & Flood's *Fast Splittable Pseudorandom Number Generators*): `split`
//! derives a child stream whose (seed, gamma) pair is a hash of the
//! parent's, giving statistically independent streams without any global
//! coordination.

use rand::RngCore;

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Variant mix with better avalanche on low bits, used to derive gammas.
fn mix_gamma(z: u64) -> u64 {
    let z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    let z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    let g = (z ^ (z >> 33)) | 1; // gammas must be odd
    // Weak gammas (too few bit transitions) degrade SplitMix64; fix up as
    // in the reference implementation.
    if (g ^ (g >> 1)).count_ones() < 24 {
        g ^ 0xaaaa_aaaa_aaaa_aaaa
    } else {
        g
    }
}

/// FNV-1a over a string, for deriving per-oracle subspaces of the seed.
pub fn hash_label(label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A deterministic splittable PRNG (SplitMix64 with per-stream gamma).
///
/// Implements [`rand::RngCore`], so it drops into every `random`
/// constructor in the workspace.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// use zkperf_testkit::SplitRng;
///
/// let mut a = SplitRng::from_seed(42);
/// let mut b = SplitRng::from_seed(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// let mut child = a.split();
/// // The child stream is independent of further draws from the parent.
/// let _ = a.gen::<u64>();
/// let _ = child.gen::<u64>();
/// ```
#[derive(Debug, Clone)]
pub struct SplitRng {
    state: u64,
    gamma: u64,
}

impl SplitRng {
    /// Builds a generator from a 64-bit seed with the default gamma.
    pub fn from_seed(seed: u64) -> Self {
        SplitRng {
            state: mix64(seed),
            gamma: GOLDEN_GAMMA,
        }
    }

    /// Derives an independent child stream, advancing this one.
    pub fn split(&mut self) -> Self {
        let s = self.raw_next();
        let g = self.raw_next();
        SplitRng {
            state: mix64(s),
            gamma: mix_gamma(g),
        }
    }

    /// Derives an independent stream keyed by `label` *without* consuming
    /// state: the same label always yields the same stream from the same
    /// generator state. This is what gives the testkit O(1) case replay.
    pub fn fork(&self, label: u64) -> Self {
        SplitRng {
            state: mix64(self.state ^ mix64(label)),
            gamma: mix_gamma(self.gamma.wrapping_add(mix64(label ^ GOLDEN_GAMMA))),
        }
    }

    fn raw_next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(self.gamma);
        mix64(self.state)
    }
}

impl RngCore for SplitRng {
    fn next_u32(&mut self) -> u32 {
        (self.raw_next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.raw_next()
    }
}

/// The environment variable naming the campaign root seed.
pub const SEED_ENV: &str = "ZKPERF_TESTKIT_SEED";

/// Default root seed for the fixed-seed smoke tier (`scripts/check.sh`).
pub const DEFAULT_SEED: u64 = 0x5eed_f00d_2024_1031;

/// Reads the root seed from [`SEED_ENV`] (decimal or `0x`-prefixed hex);
/// falls back to [`DEFAULT_SEED`] when unset or unparseable.
pub fn seed_from_env() -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(s) => parse_seed(&s).unwrap_or(DEFAULT_SEED),
        Err(_) => DEFAULT_SEED,
    }
}

/// Parses a seed literal: decimal or `0x`-prefixed hexadecimal.
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The generator for one `(root seed, oracle, case index)` triple.
pub fn case_rng(root_seed: u64, oracle: &str, case: u64) -> SplitRng {
    SplitRng::from_seed(root_seed)
        .fork(hash_label(oracle))
        .fork(case.wrapping_mul(GOLDEN_GAMMA) ^ 0x00ca_5e00)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let xs: Vec<u64> = {
            let mut r = SplitRng::from_seed(7);
            (0..32).map(|_| r.gen()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = SplitRng::from_seed(7);
            (0..32).map(|_| r.gen()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = SplitRng::from_seed(1);
        let mut a = parent.split();
        let mut b = parent.split();
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn fork_is_stateless_and_label_sensitive() {
        let parent = SplitRng::from_seed(9);
        let mut a1 = parent.fork(5);
        let mut a2 = parent.fork(5);
        let mut b = parent.fork(6);
        assert_eq!(a1.gen::<u64>(), a2.gen::<u64>());
        assert_ne!(parent.fork(5).gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn case_rng_is_an_injective_looking_map() {
        // Distinct (oracle, case) pairs give distinct first draws.
        let mut seen = std::collections::HashSet::new();
        for oracle in ["a", "b", "msm_vs_naive"] {
            for case in 0..64u64 {
                assert!(seen.insert(case_rng(3, oracle, case).gen::<u64>()));
            }
        }
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed(" 0XA "), Some(10));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn gammas_are_odd() {
        let mut r = SplitRng::from_seed(0);
        for _ in 0..100 {
            let child = r.split();
            assert_eq!(child.gamma & 1, 1);
        }
    }
}
