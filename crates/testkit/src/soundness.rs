//! Soundness-negative audit: mutated proofs must be rejected.
//!
//! A verifier that accepts everything passes every roundtrip test. This
//! module is the other half of the differential story: starting from a
//! **valid** (proof, key, statement) triple, each *mutation class* applies
//! one structured corruption — a flipped coordinate, a swapped group
//! element, an off-by-one public input, an evaluation moved to the wrong
//! domain point — and asserts verification no longer accepts. A class that
//! is still accepted is a soundness hole, reported with the campaign's
//! replay seed.
//!
//! Classes are deliberately *semantic* (negate `A`, splice `B` from
//! another valid proof, evaluate `z` at ζ instead of ζω…) rather than
//! random bit noise: random corruption nearly always lands off the curve
//! and only exercises the deserialization guard, while these land on
//! well-formed-but-wrong inputs that only the pairing / opening checks can
//! catch.

use rand::Rng;
use zkperf_ec::{Affine, CurveParams, Engine};
use zkperf_ff::{Field, Goldilocks, PrimeField};
use zkperf_groth16::{Proof, VerifyingKey};
use zkperf_plonk::{PlonkProof, PlonkVerifyingKey};
use zkperf_stark::{StarkError, StarkParams, StarkProof};

use crate::rng::SplitRng;

/// The result of one mutation class: `rejected` must be `true`.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// Proof system the class targets (`"groth16"` or `"plonk"`).
    pub scheme: &'static str,
    /// Stable class name, usable in failure reports.
    pub name: &'static str,
    /// Whether the verifier rejected the mutated input (the expectation).
    pub rejected: bool,
    /// Debug rendering of the verifier's verdict.
    pub outcome: String,
}

fn doubled<C: CurveParams>(p: &Affine<C>) -> Affine<C> {
    p.to_projective().double().to_affine()
}

/// A well-formed-looking point that is (overwhelmingly likely) off the
/// curve: same `y`, nudged `x`.
fn off_curve<C: CurveParams>(p: &Affine<C>) -> Affine<C> {
    Affine::new_unchecked(p.x + C::Base::one(), p.y)
}

// --------------------------------------------------------------- Groth16

struct Groth16Fixture<E: Engine> {
    vk: VerifyingKey<E>,
    proof: Proof<E>,
    public: Vec<E::Fr>,
    /// A second valid proof for a *different* statement under the same key.
    proof_other: Proof<E>,
    public_other: Vec<E::Fr>,
}

fn groth16_fixture<E: Engine>(rng: &mut SplitRng) -> Result<Groth16Fixture<E>, String> {
    // y = x^8 with x ≥ 2 keeps the three public wires (1, y, x) pairwise
    // distinct, so swap/tamper mutations genuinely change the statement.
    let circuit = zkperf_circuit::library::exponentiate::<E::Fr>(8);
    let x = E::Fr::from_u64(2 + rng.gen_range(0..64));
    let x_other = x + E::Fr::one();
    let pk = zkperf_groth16::setup::<E, _>(circuit.r1cs(), rng)
        .map_err(|e| format!("fixture setup failed: {e}"))?;
    let mut prove = |x: E::Fr| -> Result<(Proof<E>, Vec<E::Fr>), String> {
        let w = circuit
            .generate_witness(&[x], &[])
            .map_err(|e| format!("fixture witness failed: {e}"))?;
        let proof = zkperf_groth16::prove::<E, _>(&pk, circuit.r1cs(), &w, rng)
            .map_err(|e| format!("fixture prove failed: {e}"))?;
        Ok((proof, w.public().to_vec()))
    };
    let (proof, public) = prove(x)?;
    let (proof_other, public_other) = prove(x_other)?;
    // The fixture itself must verify, otherwise every mutation "passes"
    // vacuously.
    match zkperf_groth16::verify::<E>(&pk.vk, &proof, &public) {
        Ok(true) => {}
        other => return Err(format!("fixture proof does not verify: {other:?}")),
    }
    Ok(Groth16Fixture {
        vk: pk.vk,
        proof,
        public,
        proof_other,
        public_other,
    })
}

fn record_groth16<E: Engine>(
    out: &mut Vec<MutationOutcome>,
    name: &'static str,
    vk: &VerifyingKey<E>,
    proof: &Proof<E>,
    public: &[E::Fr],
) {
    let res = zkperf_groth16::verify::<E>(vk, proof, public);
    out.push(MutationOutcome {
        scheme: "groth16",
        name,
        rejected: !matches!(res, Ok(true)),
        outcome: format!("{res:?}"),
    });
}

/// Runs every Groth16 mutation class against a fresh fixture.
///
/// # Errors
///
/// Fails only when the fixture itself cannot be built or does not verify —
/// a mutation class that is *accepted* is reported in its
/// [`MutationOutcome`], not as an `Err`.
pub fn run_groth16_mutations<E: Engine>(
    rng: &mut SplitRng,
) -> Result<Vec<MutationOutcome>, String> {
    let fx = groth16_fixture::<E>(rng)?;
    let (vk, proof, public) = (&fx.vk, &fx.proof, fx.public.as_slice());
    let mut out = Vec::new();

    // -- proof-element mutations ------------------------------------
    let with = |name: &'static str, p: Proof<E>, out: &mut Vec<MutationOutcome>| {
        record_groth16::<E>(out, name, vk, &p, public);
    };
    with(
        "swap_a_c",
        Proof {
            a: proof.c,
            b: proof.b,
            c: proof.a,
        },
        &mut out,
    );
    with(
        "negate_a",
        Proof {
            a: proof.a.neg(),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "negate_b",
        Proof {
            b: proof.b.neg(),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "negate_c",
        Proof {
            c: proof.c.neg(),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "a_identity",
        Proof {
            a: Affine::identity(),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "b_identity",
        Proof {
            b: Affine::identity(),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "c_identity",
        Proof {
            c: Affine::identity(),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "a_generator",
        Proof {
            a: Affine::generator(),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "a_doubled",
        Proof {
            a: doubled(&proof.a),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "b_doubled",
        Proof {
            b: doubled(&proof.b),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "c_doubled",
        Proof {
            c: doubled(&proof.c),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "a_off_curve",
        Proof {
            a: off_curve(&proof.a),
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "b_off_curve",
        Proof {
            b: off_curve(&proof.b),
            ..proof.clone()
        },
        &mut out,
    );
    // Splices: each element individually replaced by the matching element
    // of a *different* valid proof — every piece is on-curve and honestly
    // generated, only the combination is wrong.
    with(
        "splice_a_from_other_proof",
        Proof {
            a: fx.proof_other.a,
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "splice_b_from_other_proof",
        Proof {
            b: fx.proof_other.b,
            ..proof.clone()
        },
        &mut out,
    );
    with(
        "splice_c_from_other_proof",
        Proof {
            c: fx.proof_other.c,
            ..proof.clone()
        },
        &mut out,
    );
    record_groth16::<E>(
        &mut out,
        "proof_for_other_statement",
        vk,
        &fx.proof_other,
        public,
    );

    // -- verifying-key mutations ------------------------------------
    let mut vk_swapped = vk.clone();
    std::mem::swap(&mut vk_swapped.gamma_g2, &mut vk_swapped.delta_g2);
    record_groth16::<E>(&mut out, "vk_gamma_delta_swapped", &vk_swapped, proof, public);
    let mut vk_neg_alpha = vk.clone();
    vk_neg_alpha.alpha_g1 = vk_neg_alpha.alpha_g1.neg();
    record_groth16::<E>(&mut out, "vk_alpha_negated", &vk_neg_alpha, proof, public);
    let mut vk_bad_ic = vk.clone();
    vk_bad_ic.ic[1] = doubled(&vk_bad_ic.ic[1]);
    record_groth16::<E>(&mut out, "vk_ic_tampered", &vk_bad_ic, proof, public);

    // -- public-witness mutations -----------------------------------
    let mut tampered = public.to_vec();
    tampered[1] += E::Fr::one();
    record_groth16::<E>(&mut out, "public_output_tampered", vk, proof, &tampered);
    let mut swapped = public.to_vec();
    swapped.swap(1, 2);
    record_groth16::<E>(&mut out, "public_entries_swapped", vk, proof, &swapped);
    let mut zeroed_one = public.to_vec();
    zeroed_one[0] = E::Fr::zero();
    record_groth16::<E>(&mut out, "public_one_wire_zeroed", vk, proof, &zeroed_one);
    record_groth16::<E>(&mut out, "public_truncated", vk, proof, &public[..public.len() - 1]);
    let mut extended = public.to_vec();
    extended.push(E::Fr::one());
    record_groth16::<E>(&mut out, "public_extended", vk, proof, &extended);

    // -- batch verification poisoned by one bad statement -----------
    let batch = [
        (proof.clone(), public.to_vec()),
        (fx.proof_other.clone(), public.to_vec()), // statement mismatch
    ];
    let res = zkperf_groth16::verify_batch::<E, _>(vk, &batch, rng);
    out.push(MutationOutcome {
        scheme: "groth16",
        name: "batch_with_poisoned_statement",
        rejected: !matches!(res, Ok(true)),
        outcome: format!("{res:?}"),
    });
    // Sanity: the all-valid batch still passes (guards against a batch
    // verifier that rejects everything).
    let good_batch = [
        (proof.clone(), public.to_vec()),
        (fx.proof_other.clone(), fx.public_other.clone()),
    ];
    match zkperf_groth16::verify_batch::<E, _>(vk, &good_batch, rng) {
        Ok(true) => {}
        other => return Err(format!("valid batch rejected: {other:?}")),
    }
    Ok(out)
}

// ----------------------------------------------------------------- PLONK

fn record_plonk<E: Engine>(
    out: &mut Vec<MutationOutcome>,
    name: &'static str,
    vk: &PlonkVerifyingKey<E>,
    proof: &PlonkProof<E>,
    public: &[E::Fr],
) where
    <E::G1 as CurveParams>::Base: PrimeField,
{
    let accepted = zkperf_plonk::plonk_verify(vk, proof, public);
    out.push(MutationOutcome {
        scheme: "plonk",
        name,
        rejected: !accepted,
        outcome: format!("accepted = {accepted}"),
    });
}

/// Runs every PLONK mutation class against a fresh fixture.
///
/// # Errors
///
/// Fails only when the fixture itself cannot be built or does not verify.
pub fn run_plonk_mutations<E: Engine>(rng: &mut SplitRng) -> Result<Vec<MutationOutcome>, String>
where
    <E::G1 as CurveParams>::Base: PrimeField,
{
    let circuit = zkperf_circuit::library::exponentiate::<E::Fr>(8);
    let x = E::Fr::from_u64(2 + rng.gen_range(0..64));
    let pk = zkperf_plonk::plonk_setup::<E, _>(circuit.r1cs(), rng)
        .map_err(|e| format!("fixture setup failed: {e}"))?;
    let w = circuit
        .generate_witness(&[x], &[])
        .map_err(|e| format!("fixture witness failed: {e}"))?;
    let proof =
        zkperf_plonk::plonk_prove(&pk, w.full()).map_err(|e| format!("fixture prove failed: {e}"))?;
    let vk = pk.vk();
    let public = w.public();
    if !zkperf_plonk::plonk_verify(vk, &proof, public) {
        return Err("fixture proof does not verify".into());
    }
    let mut out = Vec::new();
    // Evaluation order in `evals_zeta`:
    // a, b, c, z, s₁, s₂, s₃, q_L, q_R, q_O, q_M, q_C, t.
    const EVAL_A: usize = 0;
    const EVAL_Z: usize = 3;
    const EVAL_S1: usize = 4;
    const EVAL_QL: usize = 7;
    const EVAL_T: usize = 12;

    // -- commitment mutations ---------------------------------------
    let mut bad = proof.clone();
    bad.wire_commits[0].0 = doubled(&bad.wire_commits[0].0);
    record_plonk::<E>(&mut out, "wire_commit_doubled", vk, &bad, public);
    let mut bad = proof.clone();
    bad.wire_commits.swap(0, 1);
    record_plonk::<E>(&mut out, "wire_commits_swapped", vk, &bad, public);
    let mut bad = proof.clone();
    bad.z_commit.0 = doubled(&bad.z_commit.0);
    record_plonk::<E>(&mut out, "z_commit_doubled", vk, &bad, public);
    let mut bad = proof.clone();
    bad.z_commit = bad.t_commit;
    record_plonk::<E>(&mut out, "z_commit_replaced_by_t", vk, &bad, public);
    let mut bad = proof.clone();
    bad.t_commit.0 = doubled(&bad.t_commit.0);
    record_plonk::<E>(&mut out, "t_commit_doubled", vk, &bad, public);
    let mut bad = proof.clone();
    bad.t_commit.0 = Affine::identity();
    record_plonk::<E>(&mut out, "t_commit_identity", vk, &bad, public);

    // -- claimed-evaluation mutations -------------------------------
    for (name, idx) in [
        ("eval_wire_tampered", EVAL_A),
        ("eval_z_tampered", EVAL_Z),
        ("eval_sigma_tampered", EVAL_S1),
        ("eval_selector_tampered", EVAL_QL),
        ("eval_quotient_tampered", EVAL_T),
    ] {
        let mut bad = proof.clone();
        bad.evals_zeta[idx] += E::Fr::one();
        record_plonk::<E>(&mut out, name, vk, &bad, public);
    }
    let mut bad = proof.clone();
    bad.evals_zeta.rotate_left(1);
    record_plonk::<E>(&mut out, "evals_rotated", vk, &bad, public);
    let mut bad = proof.clone();
    bad.z_omega_eval += E::Fr::one();
    record_plonk::<E>(&mut out, "z_omega_tampered", vk, &bad, public);
    // Wrong-domain evaluation: claim z(ζ) where the protocol expects
    // z(ζω) — a correctly computed value for the wrong domain point.
    let mut bad = proof.clone();
    bad.z_omega_eval = bad.evals_zeta[EVAL_Z];
    record_plonk::<E>(&mut out, "z_omega_wrong_domain", vk, &bad, public);

    // -- opening-proof mutations ------------------------------------
    let mut bad = proof.clone();
    bad.w_zeta.0 = doubled(&bad.w_zeta.0);
    record_plonk::<E>(&mut out, "w_zeta_doubled", vk, &bad, public);
    let mut bad = proof.clone();
    bad.w_zeta_omega.0 = doubled(&bad.w_zeta_omega.0);
    record_plonk::<E>(&mut out, "w_zeta_omega_doubled", vk, &bad, public);
    let mut bad = proof.clone();
    std::mem::swap(&mut bad.w_zeta, &mut bad.w_zeta_omega);
    record_plonk::<E>(&mut out, "opening_proofs_swapped", vk, &bad, public);

    // -- public-input mutations -------------------------------------
    let mut tampered = public.to_vec();
    tampered[1] += E::Fr::one();
    record_plonk::<E>(&mut out, "public_output_tampered", vk, &proof, &tampered);
    let mut swapped = public.to_vec();
    swapped.swap(1, 2);
    record_plonk::<E>(&mut out, "public_entries_swapped", vk, &proof, &swapped);
    record_plonk::<E>(
        &mut out,
        "public_truncated",
        vk,
        &proof,
        &public[..public.len() - 1],
    );
    Ok(out)
}

// ----------------------------------------------------------------- STARK

/// What a STARK mutation class is allowed to die as. Classes whose
/// corruption lands *before* a transcript absorption have one forced
/// variant; classes that also perturb downstream challenges may surface
/// in the first check that reads the re-derived values, so those list the
/// full set of checks that own the corruption.
type StarkExpect = fn(&StarkError) -> bool;

struct StarkFixture {
    circuit: zkperf_circuit::Circuit<Goldilocks>,
    params: StarkParams,
    proof: StarkProof,
    public: Vec<Goldilocks>,
    /// A valid proof for a different statement under the same circuit.
    proof_other: StarkProof,
}

fn stark_fixture(rng: &mut SplitRng) -> Result<StarkFixture, String> {
    type F = Goldilocks;
    // 32 constraints → at least two committed FRI layers at blowup 4, so
    // the per-layer mutation classes have real structure to corrupt.
    let circuit = zkperf_circuit::library::exponentiate::<F>(32);
    let params = StarkParams {
        blowup: 4,
        num_queries: 12,
    };
    let x = F::from_u64(2 + rng.gen_range(0..64));
    let prove_at = |x: F| -> Result<(StarkProof, Vec<F>), String> {
        let w = circuit
            .generate_witness(&[x], &[])
            .map_err(|e| format!("fixture witness failed: {e}"))?;
        let proof = zkperf_stark::prove(circuit.r1cs(), w.full(), &params)
            .map_err(|e| format!("fixture prove failed: {e}"))?;
        Ok((proof, w.public().to_vec()))
    };
    let (proof, public) = prove_at(x)?;
    let (proof_other, _) = prove_at(x + F::one())?;
    if let Err(e) = zkperf_stark::verify(circuit.r1cs(), &public, &proof, &params) {
        return Err(format!("fixture proof does not verify: {e}"));
    }
    Ok(StarkFixture {
        circuit,
        params,
        proof,
        public,
        proof_other,
    })
}

fn record_stark(
    out: &mut Vec<MutationOutcome>,
    fx: &StarkFixture,
    name: &'static str,
    proof: &StarkProof,
    public: &[Goldilocks],
    expect: StarkExpect,
) {
    let res = zkperf_stark::verify(fx.circuit.r1cs(), public, proof, &fx.params);
    // A class only counts as rejected when verification failed *and* the
    // error is both a soundness rejection and one of the typed variants
    // that own this corruption — a mutation falling through to a generic
    // or environmental error is reported as a hole.
    let rejected = matches!(&res, Err(e) if e.is_rejection() && expect(e));
    out.push(MutationOutcome {
        scheme: "stark",
        name,
        rejected,
        outcome: format!("{res:?}"),
    });
}

/// Runs every STARK mutation class against a fresh fixture, asserting
/// each dies in the typed [`StarkError`] variant that owns the corrupted
/// structure.
///
/// # Errors
///
/// Fails only when the fixture itself cannot be built or does not verify.
pub fn run_stark_mutations(rng: &mut SplitRng) -> Result<Vec<MutationOutcome>, String> {
    type F = Goldilocks;
    let fx = stark_fixture(rng)?;
    let (proof, public) = (&fx.proof, fx.public.as_slice());
    let one = F::one();
    let mut out = Vec::new();
    let with = |name: &'static str,
                    mutate: &dyn Fn(&mut StarkProof),
                    expect: StarkExpect,
                    out: &mut Vec<MutationOutcome>| {
        let mut bad = proof.clone();
        mutate(&mut bad);
        record_stark(&mut *out, &fx, name, &bad, public, expect);
    };

    // -- commitment mutations ---------------------------------------
    // The tampered root perturbs every later challenge, so the first
    // check that can see it is the OOD identity; the Merkle check owns
    // it when the challenges happen to survive.
    with(
        "trace_root_tampered",
        &|p| p.trace_root += one,
        |e| {
            matches!(
                e,
                StarkError::OodInconsistent | StarkError::MerklePath { tree: "trace", .. }
            )
        },
        &mut out,
    );
    with(
        "quotient_root_tampered",
        &|p| p.q_root += one,
        |e| {
            matches!(
                e,
                StarkError::OodInconsistent | StarkError::MerklePath { tree: "quotient", .. }
            )
        },
        &mut out,
    );
    with(
        "fri_layer_commitment_tampered",
        &|p| p.fri_roots[0] += one,
        // Re-derived β and query indices change first; an index collision
        // falls through to the FRI Merkle check that owns the root.
        |e| {
            matches!(
                e,
                StarkError::Malformed { what: "query index" }
                    | StarkError::MerklePath { tree: "fri", .. }
            )
        },
        &mut out,
    );

    // -- out-of-domain mutations ------------------------------------
    with(
        "ood_trace_eval_tampered",
        &|p| p.ood[0] += one,
        |e| matches!(e, StarkError::OodInconsistent),
        &mut out,
    );
    with(
        "ood_quotient_eval_tampered",
        &|p| p.ood[4] += one,
        |e| matches!(e, StarkError::OodInconsistent),
        &mut out,
    );

    // -- header / parameter mutations -------------------------------
    with(
        "header_blowup_mismatch",
        &|p| p.blowup *= 2,
        |e| matches!(e, StarkError::ParamsMismatch { what: "blowup", .. }),
        &mut out,
    );
    with(
        "header_query_count_mismatch",
        &|p| p.num_queries += 1,
        |e| matches!(e, StarkError::ParamsMismatch { what: "num_queries", .. }),
        &mut out,
    );

    // -- structural truncations -------------------------------------
    with(
        "query_set_truncated",
        &|p| {
            p.queries.pop();
        },
        |e| matches!(e, StarkError::Malformed { what: "query count" }),
        &mut out,
    );
    with(
        "fri_layers_truncated",
        &|p| {
            p.fri_roots.pop();
        },
        |e| matches!(e, StarkError::Malformed { what: "fri layer count" }),
        &mut out,
    );
    with(
        "final_polynomial_tampered",
        &|p| p.final_coeffs[0] += one,
        // The final coefficients are absorbed before the query indices
        // are drawn, so the index check usually fires; the final-poly
        // spot check owns it otherwise.
        |e| {
            matches!(
                e,
                StarkError::Malformed { what: "query index" } | StarkError::FriFinal { .. }
            )
        },
        &mut out,
    );

    // -- per-query opening mutations --------------------------------
    with(
        "query_index_tampered",
        &|p| p.queries[0].index += 1,
        |e| matches!(e, StarkError::Malformed { what: "query index" }),
        &mut out,
    );
    with(
        "trace_opening_tampered",
        &|p| p.queries[0].trace_row[0] += one,
        |e| matches!(e, StarkError::MerklePath { tree: "trace", query: 0 }),
        &mut out,
    );
    with(
        "trace_path_tampered",
        &|p| p.queries[0].trace_path[0] += one,
        |e| matches!(e, StarkError::MerklePath { tree: "trace", query: 0 }),
        &mut out,
    );
    with(
        "quotient_opening_tampered",
        &|p| p.queries[0].q_value += one,
        |e| matches!(e, StarkError::MerklePath { tree: "quotient", query: 0 }),
        &mut out,
    );
    with(
        "fri_opening_tampered",
        &|p| p.queries[0].fri[0].lo += one,
        |e| matches!(e, StarkError::MerklePath { tree: "fri", query: 0 }),
        &mut out,
    );
    with(
        "fri_openings_swapped",
        &|p| {
            let step = &mut p.queries[0].fri[0];
            std::mem::swap(&mut step.lo, &mut step.hi);
            std::mem::swap(&mut step.lo_path, &mut step.hi_path);
        },
        // Each value now rides a path authenticating the opposite leaf
        // slot; a (vanishingly unlikely) colliding layout would surface
        // in the DEEP consistency check instead.
        |e| {
            matches!(
                e,
                StarkError::MerklePath { tree: "fri", .. } | StarkError::DeepMismatch { .. }
            )
        },
        &mut out,
    );

    // -- statement mutations ----------------------------------------
    let mut tampered = public.to_vec();
    tampered[1] += one;
    record_stark(&mut out, &fx, "public_input_tampered", proof, &tampered, |e| {
        matches!(e, StarkError::OodInconsistent)
    });
    record_stark(
        &mut out,
        &fx,
        "public_truncated",
        proof,
        &public[..public.len() - 1],
        |e| matches!(e, StarkError::ParamsMismatch { what: "public input count", .. }),
    );
    record_stark(
        &mut out,
        &fx,
        "proof_for_other_statement",
        &fx.proof_other,
        public,
        |e| matches!(e, StarkError::OodInconsistent),
    );

    // -- byte-level mutations ---------------------------------------
    // Garbage and truncation must die in the decoder, never reach the
    // verifier: serve hands this decoder untrusted job payloads.
    let bytes = proof.encode();
    let decode_rejects = |what: &str, bytes: &[u8]| -> MutationOutcome {
        let res = StarkProof::decode(bytes);
        MutationOutcome {
            scheme: "stark",
            name: match what {
                "truncated" => "encoding_truncated",
                _ => "encoding_garbage",
            },
            rejected: matches!(res, Err(StarkError::Decode { .. })),
            outcome: format!("{:?}", res.map(|_| "decoded")),
        }
    };
    out.push(decode_rejects("truncated", &bytes[..bytes.len() / 2]));
    // A non-canonical field word (≥ p) must be refused, not reduced:
    // stomp the trace-root word (bytes 40..48, after magic + 4 header
    // words) with u64::MAX.
    let mut garbage = bytes.clone();
    garbage[40..48].copy_from_slice(&u64::MAX.to_le_bytes());
    out.push(decode_rejects("garbage", &garbage));

    Ok(out)
}

/// Runs the full mutation suite (Groth16 over BN254 and BLS12-381, PLONK
/// over BN254, STARK over Goldilocks) and returns every class outcome.
///
/// # Errors
///
/// Propagates fixture construction failures; accepted mutations are
/// reported in the outcomes, not as errors.
pub fn run_all_mutations(rng: &mut SplitRng) -> Result<Vec<MutationOutcome>, String> {
    let mut out = run_groth16_mutations::<zkperf_ec::Bn254>(&mut rng.fork(1))?;
    // The same Groth16 classes over the second curve guard curve-specific
    // verifier shortcuts; they share class names, so distinct-class counts
    // stay per-scheme.
    out.extend(run_groth16_mutations::<zkperf_ec::Bls12_381>(&mut rng.fork(2))?);
    out.extend(run_plonk_mutations::<zkperf_ec::Bn254>(&mut rng.fork(3))?);
    out.extend(run_stark_mutations(&mut rng.fork(4))?);
    Ok(out)
}

/// Number of *distinct* (scheme, class-name) pairs in a set of outcomes.
pub fn distinct_classes(outcomes: &[MutationOutcome]) -> usize {
    outcomes
        .iter()
        .map(|o| (o.scheme, o.name))
        .collect::<std::collections::HashSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groth16_mutation_classes_all_rejected_bn254() {
        let mut rng = SplitRng::from_seed(0x50d4);
        let outcomes = run_groth16_mutations::<zkperf_ec::Bn254>(&mut rng).unwrap();
        assert!(outcomes.len() >= 20);
        for o in &outcomes {
            assert!(o.rejected, "{} accepted a mutated input: {}", o.name, o.outcome);
        }
    }

    #[test]
    fn plonk_mutation_classes_all_rejected() {
        let mut rng = SplitRng::from_seed(0x50d5);
        let outcomes = run_plonk_mutations::<zkperf_ec::Bn254>(&mut rng).unwrap();
        assert!(outcomes.len() >= 15);
        for o in &outcomes {
            assert!(o.rejected, "{} accepted a mutated input: {}", o.name, o.outcome);
        }
    }

    #[test]
    fn stark_mutation_classes_all_die_in_their_typed_variant() {
        let mut rng = SplitRng::from_seed(0x50d6);
        let outcomes = run_stark_mutations(&mut rng).unwrap();
        assert!(outcomes.len() >= 12, "only {} STARK classes", outcomes.len());
        for o in &outcomes {
            assert!(
                o.rejected,
                "{} was not rejected with its typed error: {}",
                o.name, o.outcome
            );
        }
    }
}
