//! Micro-op cost templates for the arithmetic primitives of the suite.
//!
//! The instrumented crates do not emit one event per machine instruction —
//! that would make measurement runs intractable. Instead each high-level
//! primitive (a Montgomery multiplication, an NTT butterfly, a point
//! doubling, ...) retires a documented *template* of micro-ops. The
//! templates below were sized from the operation's actual limb-level
//! structure: e.g. a CIOS Montgomery multiplication over `n` 64-bit limbs
//! performs roughly `2n² + n` wide multiplies plus the same order of adds
//! and carries, reads `2n` operand limbs and writes `n` result limbs.

/// A micro-op template: how many compute, control, and data micro-ops one
/// occurrence of a primitive retires, and how many operand limbs it moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// Retired compute micro-ops per occurrence.
    pub compute: u32,
    /// Retired control micro-ops per occurrence (loop tests, branches).
    pub control: u32,
    /// Retired data-movement micro-ops per occurrence, *excluding* the one
    /// data micro-op implied by each explicit load/store event.
    pub data: u32,
}

impl OpCost {
    /// Cost of a CIOS Montgomery multiplication over `n` 64-bit limbs.
    ///
    /// Inner structure: for each of the `n` outer iterations, `n` wide
    /// multiply-accumulates for the operand row, one reduction quotient,
    /// and `n` more multiply-accumulates for the modulus row, followed by a
    /// final conditional subtraction.
    pub const fn mont_mul(n: u32) -> OpCost {
        OpCost {
            compute: 2 * n * n + 2 * n,
            control: 2 * n + 1,
            data: n * n + 2 * n,
        }
    }

    /// Cost of a dedicated Montgomery squaring over `n` 64-bit limbs.
    ///
    /// The symmetric-term shortcut computes each off-diagonal product once
    /// and doubles, so the operand-row multiplies drop from `n²` to
    /// `n(n+1)/2`; the reduction rows are unchanged from [`mont_mul`]
    /// (`OpCost::mont_mul`).
    pub const fn mont_sqr(n: u32) -> OpCost {
        OpCost {
            compute: n * (n + 1) / 2 + n * n + 3 * n,
            control: 2 * n + 1,
            data: n * (n + 1) / 2 + n * n / 2 + 2 * n,
        }
    }

    /// Cost of a modular addition/subtraction over `n` limbs: limb adds with
    /// carries plus a conditional reduction.
    pub const fn mod_add(n: u32) -> OpCost {
        OpCost {
            compute: 2 * n + 1,
            control: 3,
            data: n + 2,
        }
    }

    /// Cost of one schoolbook big-integer multiply-accumulate row of `n`
    /// limbs (used by the `bigint` helper module).
    pub const fn bigint_row(n: u32) -> OpCost {
        OpCost {
            compute: 2 * n,
            control: n,
            data: n,
        }
    }

    /// Cost of a generic bookkeeping step (index arithmetic, small copies).
    pub const fn bookkeeping() -> OpCost {
        OpCost {
            compute: 2,
            control: 1,
            data: 2,
        }
    }

    /// Scale every component by `k` occurrences, saturating.
    pub const fn times(self, k: u32) -> OpCost {
        OpCost {
            compute: self.compute.saturating_mul(k),
            control: self.control.saturating_mul(k),
            data: self.data.saturating_mul(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mont_mul_grows_quadratically() {
        let four = OpCost::mont_mul(4);
        let six = OpCost::mont_mul(6);
        assert_eq!(four.compute, 2 * 16 + 8);
        assert_eq!(six.compute, 2 * 36 + 12);
        assert!(six.compute > four.compute);
        assert!(six.data > four.data, "data moves grow with limb count");
    }

    #[test]
    fn times_scales_all_components() {
        let c = OpCost::mod_add(4).times(3);
        assert_eq!(c.compute, 27);
        assert_eq!(c.control, 9);
        assert_eq!(c.data, 18);
    }
}
