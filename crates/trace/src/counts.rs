//! Aggregate micro-op counters collected during a tracing session.

use serde::{Deserialize, Serialize};

use crate::OpClass;

/// Totals of everything retired while a [`crate::Session`] was active.
///
/// One `OpCounts` is kept for the whole session and one per function region,
/// so the code analysis can both classify a protocol stage (compute /
/// control-flow / data-flow intensive, Table V of the paper) and attribute
/// CPU time to hot functions (Table IV).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Retired compute micro-ops (`add`, `mul`, `adc`, ...).
    pub compute_uops: u64,
    /// Retired control-flow micro-ops (branches, calls, loop tests).
    pub control_uops: u64,
    /// Retired data-movement micro-ops (`mov`, register shuffles, plus one
    /// per load/store issued).
    pub data_uops: u64,
    /// Number of load operations issued to the memory subsystem.
    pub loads: u64,
    /// Number of store operations issued to the memory subsystem.
    pub stores: u64,
    /// Total bytes read by loads.
    pub load_bytes: u64,
    /// Total bytes written by stores.
    pub store_bytes: u64,
    /// Conditional branches executed (subset of `control_uops`).
    pub branches: u64,
    /// Heap allocations reported via [`crate::alloc`].
    pub allocs: u64,
    /// Total bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Bulk-copy operations reported via [`crate::memcpy`].
    pub memcpys: u64,
    /// Total bytes moved by those copies.
    pub memcpy_bytes: u64,
}

impl OpCounts {
    /// A zeroed counter set. Identical to [`Default::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Total retired micro-ops across all three classes.
    ///
    /// This is the "kilo instructions" denominator used for MPKI.
    pub fn total_uops(&self) -> u64 {
        self.compute_uops + self.control_uops + self.data_uops
    }

    /// Retired micro-ops of one class.
    pub fn uops(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Compute => self.compute_uops,
            OpClass::Control => self.control_uops,
            OpClass::Data => self.data_uops,
        }
    }

    /// Percentage (0-100) of retired micro-ops in `class`.
    ///
    /// Returns 0.0 when nothing has been retired.
    pub fn class_percent(&self, class: OpClass) -> f64 {
        let total = self.total_uops();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.uops(class) as f64 / total as f64
    }

    /// Element-wise accumulation of another counter set into this one.
    pub fn absorb(&mut self, other: &OpCounts) {
        self.compute_uops += other.compute_uops;
        self.control_uops += other.control_uops;
        self.data_uops += other.data_uops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_bytes += other.load_bytes;
        self.store_bytes += other.store_bytes;
        self.branches += other.branches;
        self.allocs += other.allocs;
        self.alloc_bytes += other.alloc_bytes;
        self.memcpys += other.memcpys;
        self.memcpy_bytes += other.memcpy_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_percent() {
        let c = OpCounts {
            compute_uops: 50,
            control_uops: 25,
            data_uops: 25,
            ..OpCounts::default()
        };
        assert_eq!(c.total_uops(), 100);
        assert_eq!(c.class_percent(OpClass::Compute), 50.0);
        assert_eq!(c.class_percent(OpClass::Control), 25.0);
        assert_eq!(c.class_percent(OpClass::Data), 25.0);
    }

    #[test]
    fn percent_of_empty_counts_is_zero() {
        let c = OpCounts::new();
        for class in OpClass::ALL {
            assert_eq!(c.class_percent(class), 0.0);
        }
    }

    #[test]
    fn absorb_accumulates_every_field() {
        let mut a = OpCounts {
            compute_uops: 1,
            control_uops: 2,
            data_uops: 3,
            loads: 4,
            stores: 5,
            load_bytes: 6,
            store_bytes: 7,
            branches: 8,
            allocs: 9,
            alloc_bytes: 10,
            memcpys: 11,
            memcpy_bytes: 12,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.compute_uops, 2);
        assert_eq!(a.control_uops, 4);
        assert_eq!(a.data_uops, 6);
        assert_eq!(a.loads, 8);
        assert_eq!(a.stores, 10);
        assert_eq!(a.load_bytes, 12);
        assert_eq!(a.store_bytes, 14);
        assert_eq!(a.branches, 16);
        assert_eq!(a.allocs, 18);
        assert_eq!(a.alloc_bytes, 20);
        assert_eq!(a.memcpys, 22);
        assert_eq!(a.memcpy_bytes, 24);
    }
}
