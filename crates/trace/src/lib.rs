#![warn(missing_docs)]

//! Lightweight execution-event tracing for the zkperf suite.
//!
//! Every instrumented crate (fields, curves, polynomials, circuits, Groth16)
//! reports what it does — retired micro-ops by class, memory touches with
//! real addresses, branch outcomes, allocations, bulk copies and function
//! regions — through the free functions in this crate. The events feed two
//! consumers:
//!
//! * an always-on, per-thread [`OpCounts`] aggregate (cheap counters), and
//! * an optional [`EventSink`] installed for a [`Session`], which is how the
//!   `zkperf-machine` microarchitecture simulator observes the execution.
//!
//! When no session is active every entry point is a single thread-local flag
//! check, so instrumentation can stay in release builds.
//!
//! # Examples
//!
//! ```
//! use zkperf_trace as trace;
//!
//! let session = trace::Session::begin();
//! trace::compute(3);
//! let v = vec![1u64, 2, 3];
//! trace::load(v.as_ptr() as usize, 24);
//! let report = session.finish();
//! assert_eq!(report.counts.compute_uops, 3);
//! assert_eq!(report.counts.loads, 1);
//! ```

mod counts;
mod cost;
mod region;
mod sink;
mod tracer;

pub use counts::OpCounts;
pub use cost::OpCost;
pub use region::{function_id, function_name, FunctionId};
pub use sink::{EventSink, NullSink};
pub use tracer::{
    alloc, branch, compute, control, data_move, enter, exit, is_active, load, memcpy,
    region_profile, store, RegionGuard, RegionProfile, Session, SessionReport,
};

/// Classes of retired micro-operations, mirroring the paper's code analysis
/// split into compute, control-flow, and data-flow instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Arithmetic/logic operations (`add`, `mul`, `and`, ...).
    Compute,
    /// Operations that alter control flow (`jz`, `jnb`, `call`, ...).
    Control,
    /// Data-movement operations (`mov`, `push`, loads and stores, ...).
    Data,
}

impl OpClass {
    /// All classes, in display order.
    pub const ALL: [OpClass; 3] = [OpClass::Compute, OpClass::Control, OpClass::Data];
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpClass::Compute => "compute",
            OpClass::Control => "control",
            OpClass::Data => "data",
        };
        f.write_str(s)
    }
}
