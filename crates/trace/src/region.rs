//! Global registry of function regions for hot-function attribution.
//!
//! A *region* is a named span of execution ("msm", "bigint_mul", "memcpy",
//! ...). Instrumented code wraps work in [`crate::RegionGuard`]s; the active
//! session attributes micro-ops and wall time to the innermost region, which
//! is how the code analysis reproduces the paper's Table IV (hot functions).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Identifier of a registered function region.
///
/// Obtained from [`function_id`]; resolves back to its name with
/// [`function_name`]. Ids are process-global and stable for the lifetime of
/// the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(pub(crate) u32);

impl FunctionId {
    /// The raw index of this id (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

struct Registry {
    by_name: HashMap<&'static str, FunctionId>,
    names: Vec<&'static str>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Interns `name` and returns its process-global [`FunctionId`].
///
/// Calling this repeatedly with the same name returns the same id. Names
/// must be `'static` because they are kept for the process lifetime;
/// instrumented call sites use string literals.
///
/// # Examples
///
/// ```
/// let a = zkperf_trace::function_id("msm");
/// let b = zkperf_trace::function_id("msm");
/// assert_eq!(a, b);
/// ```
pub fn function_id(name: &'static str) -> FunctionId {
    let mut reg = registry().lock().expect("function registry poisoned");
    if let Some(&id) = reg.by_name.get(name) {
        return id;
    }
    let id = FunctionId(u32::try_from(reg.names.len()).expect("too many regions"));
    reg.names.push(name);
    reg.by_name.insert(name, id);
    id
}

/// Resolves a [`FunctionId`] back to the name it was registered with.
///
/// # Examples
///
/// ```
/// let id = zkperf_trace::function_id("fft");
/// assert_eq!(zkperf_trace::function_name(id), "fft");
/// ```
///
/// # Panics
///
/// Panics if `id` was not produced by [`function_id`] in this process.
pub fn function_name(id: FunctionId) -> &'static str {
    let reg = registry().lock().expect("function registry poisoned");
    reg.names[id.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = function_id("test_region_alpha");
        let b = function_id("test_region_alpha");
        let c = function_id("test_region_beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(function_name(a), "test_region_alpha");
        assert_eq!(function_name(c), "test_region_beta");
    }

    #[test]
    fn ids_are_dense_indices() {
        let a = function_id("test_region_dense_1");
        let b = function_id("test_region_dense_2");
        assert_eq!(b.index(), a.index() + 1);
    }
}
