//! The observer interface between the tracer and a microarchitecture model.

use crate::{FunctionId, OpClass};

/// Receives the raw event stream of a tracing session.
///
/// `zkperf-machine` implements this to drive its cache hierarchy, branch
/// predictor and top-down slot accounting from a real execution. All methods
/// have empty default bodies so simple sinks only override what they need.
///
/// Addresses passed to [`load`](EventSink::load) / [`store`](EventSink::store)
/// are genuine data addresses of the running process, which gives the cache
/// simulation realistic spatial locality for free.
pub trait EventSink {
    /// `uops` micro-ops of `class` retired.
    fn retire(&mut self, class: OpClass, uops: u32) {
        let _ = (class, uops);
    }
    /// A load of `bytes` bytes at virtual address `addr`.
    fn load(&mut self, addr: usize, bytes: u32) {
        let _ = (addr, bytes);
    }
    /// A store of `bytes` bytes at virtual address `addr`.
    fn store(&mut self, addr: usize, bytes: u32) {
        let _ = (addr, bytes);
    }
    /// A conditional branch at static site `site` resolved as `taken`.
    fn branch(&mut self, site: u64, taken: bool) {
        let _ = (site, taken);
    }
    /// A heap allocation of `bytes` bytes.
    fn alloc(&mut self, bytes: usize) {
        let _ = bytes;
    }
    /// A bulk copy of `bytes` bytes from `src` to `dst`.
    fn memcpy(&mut self, dst: usize, src: usize, bytes: usize) {
        let _ = (dst, src, bytes);
    }
    /// Control entered the region `id` (innermost attribution changes).
    fn enter_region(&mut self, id: FunctionId) {
        let _ = id;
    }
    /// Control left the innermost region.
    fn exit_region(&mut self) {}
}

/// A sink that discards every event; useful to measure tracer overhead and
/// as a placeholder in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.retire(OpClass::Compute, 10);
        sink.load(0x1000, 8);
        sink.store(0x2000, 8);
        sink.branch(1, true);
        sink.alloc(64);
        sink.memcpy(0x3000, 0x4000, 128);
        sink.enter_region(crate::function_id("null_sink_test"));
        sink.exit_region();
    }
}
