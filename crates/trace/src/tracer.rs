//! The per-thread tracer: session lifecycle, event entry points, regions.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use crate::{EventSink, FunctionId, OpClass, OpCounts};

/// Process-wide count of live sessions (any thread).
///
/// This is the fast-path gate: when zero — the common case for
/// uninstrumented release runs — every event entry point reduces to one
/// relaxed atomic load and a never-taken, perfectly predicted branch,
/// without even touching thread-local storage. Only when some thread has a
/// session open does the per-thread `ACTIVE` flag get consulted, so
/// instrumented runs still observe exactly the op stream they always did.
static LIVE_SESSIONS: AtomicU32 = AtomicU32::new(0);

/// Per-region attribution collected during a session.
#[derive(Debug, Clone)]
pub struct RegionProfile {
    /// The region this profile describes.
    pub id: FunctionId,
    /// Micro-ops and memory traffic attributed to the region itself
    /// (excluding nested regions).
    pub counts: OpCounts,
    /// Wall-clock self time (excluding nested regions).
    pub self_time: Duration,
    /// Number of times the region was entered.
    pub calls: u64,
}

impl RegionProfile {
    fn new(id: FunctionId) -> Self {
        RegionProfile {
            id,
            counts: OpCounts::default(),
            self_time: Duration::ZERO,
            calls: 0,
        }
    }

    /// The name the region was registered with.
    pub fn name(&self) -> &'static str {
        crate::function_name(self.id)
    }
}

struct State {
    counts: OpCounts,
    regions: Vec<Option<RegionProfile>>,
    stack: Vec<FunctionId>,
    last_stamp: Instant,
    start: Instant,
    unattributed: Duration,
    sink: Option<Box<dyn EventSink>>,
}

impl State {
    fn new(sink: Option<Box<dyn EventSink>>) -> Self {
        let now = Instant::now();
        State {
            counts: OpCounts::default(),
            regions: Vec::new(),
            stack: Vec::new(),
            last_stamp: now,
            start: now,
            unattributed: Duration::ZERO,
            sink,
        }
    }

    fn slot(&mut self, id: FunctionId) -> &mut RegionProfile {
        let idx = id.index();
        if idx >= self.regions.len() {
            self.regions.resize_with(idx + 1, || None);
        }
        self.regions[idx].get_or_insert_with(|| RegionProfile::new(id))
    }

    /// Attribute wall time since the last transition to the innermost open
    /// region (or to the unattributed bucket) and reset the stamp.
    fn settle_time(&mut self) {
        let now = Instant::now();
        let elapsed = now - self.last_stamp;
        self.last_stamp = now;
        match self.stack.last().copied() {
            Some(top) => self.slot(top).self_time += elapsed,
            None => self.unattributed += elapsed,
        }
    }
}

thread_local! {
    static ACTIVE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static STATE: RefCell<Option<State>> = const { RefCell::new(None) };
}

/// Whether a tracing session is active on this thread.
///
/// Instrumented code may use this to skip preparing expensive event
/// arguments; the event entry points already check it internally. When no
/// session exists anywhere in the process this is a single relaxed atomic
/// load plus a predictable branch — the zero-cost fast path that lets
/// instrumentation stay compiled into release builds.
#[inline(always)]
pub fn is_active() -> bool {
    LIVE_SESSIONS.load(Ordering::Relaxed) != 0 && ACTIVE.with(|a| a.get())
}

#[inline(always)]
fn with_state(f: impl FnOnce(&mut State)) {
    if !is_active() {
        return;
    }
    with_state_slow(f);
}

/// The instrumented-run path, outlined and marked cold so the fast-path
/// check above inlines into callers as a bare load-test-return.
#[cold]
#[inline(never)]
fn with_state_slow(f: impl FnOnce(&mut State)) {
    STATE.with(|s| {
        if let Some(state) = s.borrow_mut().as_mut() {
            f(state);
        }
    });
}

/// An active tracing session on the current thread.
///
/// Only one session may be active per thread; [`Session::begin`] panics if
/// one already is. Dropping the session without calling
/// [`finish`](Session::finish) discards its measurements.
///
/// # Examples
///
/// ```
/// use zkperf_trace as trace;
/// let session = trace::Session::begin();
/// trace::compute(7);
/// let report = session.finish();
/// assert_eq!(report.counts.compute_uops, 7);
/// ```
#[derive(Debug)]
pub struct Session {
    finished: bool,
}

/// Everything a [`Session`] measured.
#[derive(Debug)]
pub struct SessionReport {
    /// Session-wide totals.
    pub counts: OpCounts,
    /// Wall-clock duration of the session.
    pub wall_time: Duration,
    /// Wall time spent outside any region.
    pub unattributed_time: Duration,
    /// Per-region attribution, in region-id order.
    pub regions: Vec<RegionProfile>,
    /// The sink installed at [`Session::begin_with_sink`], returned so the
    /// caller can extract what the sink accumulated.
    pub sink: Option<Box<dyn EventSink>>,
}

impl std::fmt::Debug for Box<dyn EventSink> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Box<dyn EventSink>")
    }
}

impl Session {
    /// Starts a counting-only session (no sink).
    ///
    /// # Panics
    ///
    /// Panics if a session is already active on this thread.
    pub fn begin() -> Session {
        Self::start(None)
    }

    /// Starts a session that forwards every event to `sink`.
    ///
    /// # Panics
    ///
    /// Panics if a session is already active on this thread.
    pub fn begin_with_sink(sink: Box<dyn EventSink>) -> Session {
        Self::start(Some(sink))
    }

    fn start(sink: Option<Box<dyn EventSink>>) -> Session {
        STATE.with(|s| {
            let mut slot = s.borrow_mut();
            assert!(
                slot.is_none(),
                "a tracing session is already active on this thread"
            );
            *slot = Some(State::new(sink));
        });
        ACTIVE.with(|a| a.set(true));
        LIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
        Session { finished: false }
    }

    /// Ends the session and returns its measurements.
    pub fn finish(mut self) -> SessionReport {
        self.finished = true;
        ACTIVE.with(|a| a.set(false));
        LIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
        let mut state = STATE
            .with(|s| s.borrow_mut().take())
            .expect("session state missing at finish");
        // Close the books on any still-open regions' elapsed time.
        state.settle_time();
        SessionReport {
            counts: state.counts,
            wall_time: state.last_stamp - state.start,
            unattributed_time: state.unattributed,
            regions: state.regions.into_iter().flatten().collect(),
            sink: state.sink,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.with(|a| a.set(false));
            STATE.with(|s| *s.borrow_mut() = None);
            LIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl SessionReport {
    /// The profile of the region registered as `name`, if it ever ran.
    pub fn region(&self, name: &str) -> Option<&RegionProfile> {
        self.regions.iter().find(|r| r.name() == name)
    }
}

macro_rules! retire {
    ($state:ident, $class:expr, $uops:expr, $field:ident) => {{
        $state.counts.$field += u64::from($uops);
        if let Some(top) = $state.stack.last().copied() {
            $state.slot(top).counts.$field += u64::from($uops);
        }
        if let Some(sink) = $state.sink.as_mut() {
            sink.retire($class, $uops);
        }
    }};
}

/// Retires `uops` compute micro-ops.
#[inline]
pub fn compute(uops: u32) {
    with_state(|s| retire!(s, OpClass::Compute, uops, compute_uops));
}

/// Retires `uops` control-flow micro-ops.
#[inline]
pub fn control(uops: u32) {
    with_state(|s| retire!(s, OpClass::Control, uops, control_uops));
}

/// Retires `uops` data-movement micro-ops (register traffic; loads and
/// stores are reported separately and add their own data micro-op).
#[inline]
pub fn data_move(uops: u32) {
    with_state(|s| retire!(s, OpClass::Data, uops, data_uops));
}

fn mem_common(state: &mut State, bytes: u32, is_load: bool) {
    state.counts.data_uops += 1;
    if is_load {
        state.counts.loads += 1;
        state.counts.load_bytes += u64::from(bytes);
    } else {
        state.counts.stores += 1;
        state.counts.store_bytes += u64::from(bytes);
    }
    if let Some(top) = state.stack.last().copied() {
        let slot = state.slot(top);
        slot.counts.data_uops += 1;
        if is_load {
            slot.counts.loads += 1;
            slot.counts.load_bytes += u64::from(bytes);
        } else {
            slot.counts.stores += 1;
            slot.counts.store_bytes += u64::from(bytes);
        }
    }
}

/// Reports a load of `bytes` bytes at `addr`.
#[inline]
pub fn load(addr: usize, bytes: u32) {
    with_state(|s| {
        mem_common(s, bytes, true);
        if let Some(sink) = s.sink.as_mut() {
            sink.retire(OpClass::Data, 0);
            sink.load(addr, bytes);
        }
    });
}

/// Reports a store of `bytes` bytes at `addr`.
#[inline]
pub fn store(addr: usize, bytes: u32) {
    with_state(|s| {
        mem_common(s, bytes, false);
        if let Some(sink) = s.sink.as_mut() {
            sink.store(addr, bytes);
        }
    });
}

/// Reports a conditional branch at static site `site` resolved as `taken`.
///
/// Also retires one control micro-op.
#[inline]
pub fn branch(site: u64, taken: bool) {
    with_state(|s| {
        s.counts.branches += 1;
        retire!(s, OpClass::Control, 1u32, control_uops);
        if let Some(sink) = s.sink.as_mut() {
            sink.branch(site, taken);
        }
    });
}

/// Reports a heap allocation of `bytes` bytes.
///
/// Attributed to the hot-function table under the innermost region; callers
/// usually wrap sizeable allocations in a `malloc` region so the code
/// analysis surfaces them the way VTune surfaces `malloc`.
#[inline]
pub fn alloc(bytes: usize) {
    with_state(|s| {
        s.counts.allocs += 1;
        s.counts.alloc_bytes += bytes as u64;
        if let Some(top) = s.stack.last().copied() {
            let slot = s.slot(top);
            slot.counts.allocs += 1;
            slot.counts.alloc_bytes += bytes as u64;
        }
        // Allocator bookkeeping retires a mix of all three classes.
        retire!(s, OpClass::Compute, 8u32, compute_uops);
        retire!(s, OpClass::Control, 6u32, control_uops);
        retire!(s, OpClass::Data, 10u32, data_uops);
        if let Some(sink) = s.sink.as_mut() {
            sink.alloc(bytes);
        }
    });
}

/// Reports a bulk copy of `bytes` bytes from `src` to `dst`.
///
/// Retires data micro-ops proportional to the copy size (one per 8-byte
/// word) and forwards the copy to the sink so the cache model sees both
/// streams.
#[inline]
pub fn memcpy(dst: usize, src: usize, bytes: usize) {
    with_state(|s| {
        s.counts.memcpys += 1;
        s.counts.memcpy_bytes += bytes as u64;
        let words = (bytes as u64).div_ceil(8);
        let words32 = u32::try_from(words.min(u64::from(u32::MAX))).expect("clamped");
        if let Some(top) = s.stack.last().copied() {
            let slot = s.slot(top);
            slot.counts.memcpys += 1;
            slot.counts.memcpy_bytes += bytes as u64;
        }
        retire!(s, OpClass::Data, words32, data_uops);
        retire!(s, OpClass::Control, (words32 / 16).max(1), control_uops);
        if let Some(sink) = s.sink.as_mut() {
            sink.memcpy(dst, src, bytes);
        }
    });
}

/// Low-level region entry; prefer [`region_profile`] for RAII scoping.
#[inline]
pub fn enter(id: FunctionId) {
    with_state(|s| {
        s.settle_time();
        s.slot(id).calls += 1;
        s.stack.push(id);
        if let Some(sink) = s.sink.as_mut() {
            sink.enter_region(id);
        }
    });
}

/// Low-level region exit; must pair with [`enter`].
#[inline]
pub fn exit() {
    with_state(|s| {
        s.settle_time();
        s.stack.pop();
        if let Some(sink) = s.sink.as_mut() {
            sink.exit_region();
        }
    });
}

/// RAII guard produced by [`region_profile`]; leaving the scope exits the
/// region.
#[derive(Debug)]
pub struct RegionGuard {
    _priv: (),
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        exit();
    }
}

/// Enters the named region for the current scope.
///
/// # Examples
///
/// ```
/// use zkperf_trace as trace;
/// let session = trace::Session::begin();
/// {
///     let _g = trace::region_profile("bigint");
///     trace::compute(100);
/// }
/// let report = session.finish();
/// assert_eq!(report.region("bigint").unwrap().counts.compute_uops, 100);
/// ```
#[inline]
pub fn region_profile(name: &'static str) -> RegionGuard {
    enter(crate::function_id(name));
    RegionGuard { _priv: () }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_without_session_are_noops() {
        assert!(!is_active());
        compute(10);
        load(0x100, 8);
        branch(1, true);
        // Nothing to assert beyond "did not panic": no session exists.
    }

    #[test]
    fn session_counts_and_regions() {
        let session = Session::begin();
        assert!(is_active());
        compute(5);
        {
            let _g = region_profile("tracer_test_inner");
            compute(7);
            store(0x2000, 32);
            branch(42, false);
        }
        data_move(3);
        let report = session.finish();
        assert!(!is_active());
        assert_eq!(report.counts.compute_uops, 12);
        assert_eq!(report.counts.stores, 1);
        assert_eq!(report.counts.store_bytes, 32);
        assert_eq!(report.counts.branches, 1);
        // store adds 1 data uop, explicit data_move adds 3.
        assert_eq!(report.counts.data_uops, 4);
        let inner = report.region("tracer_test_inner").unwrap();
        assert_eq!(inner.counts.compute_uops, 7);
        assert_eq!(inner.counts.stores, 1);
        assert_eq!(inner.calls, 1);
    }

    #[test]
    fn nested_regions_attribute_to_innermost() {
        let session = Session::begin();
        {
            let _outer = region_profile("tracer_test_outer");
            compute(1);
            {
                let _inner = region_profile("tracer_test_nested");
                compute(10);
            }
            compute(2);
        }
        let report = session.finish();
        assert_eq!(
            report
                .region("tracer_test_outer")
                .unwrap()
                .counts
                .compute_uops,
            3
        );
        assert_eq!(
            report
                .region("tracer_test_nested")
                .unwrap()
                .counts
                .compute_uops,
            10
        );
    }

    #[test]
    fn sink_receives_events() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Tally {
            loads: usize,
            branches: usize,
            regions: usize,
        }
        struct Recorder(Rc<RefCell<Tally>>);
        impl EventSink for Recorder {
            fn load(&mut self, _addr: usize, _bytes: u32) {
                self.0.borrow_mut().loads += 1;
            }
            fn branch(&mut self, _site: u64, _taken: bool) {
                self.0.borrow_mut().branches += 1;
            }
            fn enter_region(&mut self, _id: FunctionId) {
                self.0.borrow_mut().regions += 1;
            }
        }
        let tally = Rc::new(RefCell::new(Tally::default()));
        let session = Session::begin_with_sink(Box::new(Recorder(Rc::clone(&tally))));
        load(0x10, 8);
        load(0x20, 8);
        branch(7, true);
        {
            let _g = region_profile("tracer_test_sink");
        }
        let report = session.finish();
        drop(report);
        let tally = tally.borrow();
        assert_eq!(tally.loads, 2);
        assert_eq!(tally.branches, 1);
        assert_eq!(tally.regions, 1);
    }

    #[test]
    fn memcpy_retires_word_granular_data_uops() {
        let session = Session::begin();
        memcpy(0x100, 0x200, 64);
        let report = session.finish();
        assert_eq!(report.counts.memcpys, 1);
        assert_eq!(report.counts.memcpy_bytes, 64);
        assert_eq!(report.counts.data_uops, 8);
    }

    #[test]
    fn dropped_session_allows_a_new_one() {
        {
            let _abandoned = Session::begin();
            compute(5);
            // dropped without finish(): measurements discarded
        }
        assert!(!is_active());
        let session = Session::begin();
        compute(2);
        let report = session.finish();
        assert_eq!(report.counts.compute_uops, 2);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn nested_sessions_panic() {
        let _outer = Session::begin();
        let _inner = Session::begin();
    }
}
