//! Merkle-membership proof: convince a verifier that a secret leaf belongs
//! to a committed set without revealing which one — the credential-style
//! application motivating ZKP adoption in the paper's introduction.
//!
//! Run with `cargo run --release --example merkle_membership`.

use zkperf::circuit::library::{hash2, merkle_membership, merkle_path_inputs};
use zkperf::ec::Bls12_381;
use zkperf::ff::{bls12_381::Fr, Field};
use zkperf::groth16::{prove, setup, verify};

const DEPTH: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a toy set of 2^DEPTH members and commit to it as a Merkle tree.
    let leaves: Vec<Fr> = (0..1u64 << DEPTH).map(|i| Fr::from_u64(1000 + i)).collect();
    let mut levels = vec![leaves.clone()];
    while levels.last().unwrap().len() > 1 {
        let prev = levels.last().unwrap();
        let next: Vec<Fr> = prev.chunks(2).map(|p| hash2(p[0], p[1])).collect();
        levels.push(next);
    }
    let root = levels.last().unwrap()[0];
    println!("committed to {} members, root = {root}", leaves.len());

    // The prover knows member #137 and its authentication path.
    let mut index = 137usize;
    let mut path = Vec::new();
    for level in &levels[..DEPTH] {
        let sibling = level[index ^ 1];
        path.push((sibling, index % 2 == 1));
        index /= 2;
    }
    let (private_inputs, recomputed) = merkle_path_inputs(leaves[137], &path);
    assert_eq!(recomputed, root, "path authenticates against the root");

    // Prove membership on BLS12-381 without revealing leaf or path.
    let circuit = merkle_membership::<Fr>(DEPTH);
    println!(
        "membership circuit: {} constraints",
        circuit.r1cs().num_constraints()
    );
    let mut rng = zkperf::ff::test_rng();
    let pk = setup::<Bls12_381, _>(circuit.r1cs(), &mut rng)?;
    let witness = circuit.generate_witness(&[], &private_inputs)?;
    assert_eq!(witness.public()[1], root);
    let proof = prove::<Bls12_381, _>(&pk, circuit.r1cs(), &witness, &mut rng)?;

    // The verifier checks the proof against the public root only.
    let ok = verify::<Bls12_381>(&pk.vk, &proof, &[Fr::one(), root])?;
    println!("membership proof: {}", if ok { "ACCEPT" } else { "REJECT" });
    assert!(ok);

    // Against a different root the same proof fails.
    assert!(!verify::<Bls12_381>(&pk.vk, &proof, &[Fr::one(), root + Fr::one()])?);
    println!("proof against a different root: REJECT, as it should be");
    Ok(())
}
