//! Proving the same statement under both schemes snarkjs offers — Groth16
//! and PlonK — and timing them (the paper's §IV-A comparison).
//!
//! Run with `cargo run --release --example plonk_demo`.

use std::time::Instant;

use zkperf::circuit::library::exponentiate;
use zkperf::ec::Bn254;
use zkperf::ff::{bn254::Fr, Field};
use zkperf::groth16;
use zkperf::plonk::{plonk_prove, plonk_setup, plonk_verify};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 9;
    let circuit = exponentiate::<Fr>(n);
    let witness = circuit.generate_witness(&[Fr::from_u64(3)], &[])?;
    let mut rng = zkperf::ff::test_rng();
    println!("statement: y = 3^{n} over BN254 ({n} constraints)\n");

    let g_pk = groth16::setup::<Bn254, _>(circuit.r1cs(), &mut rng)?;
    let t = Instant::now();
    let g_proof = groth16::prove::<Bn254, _>(&g_pk, circuit.r1cs(), &witness, &mut rng)?;
    let g_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(groth16::verify::<Bn254>(&g_pk.vk, &g_proof, witness.public())?);
    println!("Groth16: proved in {g_ms:.1} ms, proof {} bytes, ACCEPT", g_proof.size_bytes());

    let p_pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng)?;
    let t = Instant::now();
    let p_proof = plonk_prove(&p_pk, witness.full())?;
    let p_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(plonk_verify(p_pk.vk(), &p_proof, witness.public()));
    println!("PlonK:   proved in {p_ms:.1} ms, ACCEPT");

    println!(
        "\nPlonK/Groth16 proving-time ratio: {:.2}× (the paper reports ~2× for snarkjs)",
        p_ms / g_ms
    );
    Ok(())
}
