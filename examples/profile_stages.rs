//! Runs the paper's full characterization pipeline on one workload and
//! prints every analysis: the end-to-end demonstration of the zkperf
//! framework itself.
//!
//! Run with `cargo run --release --example profile_stages`.

use zkperf::core::{analysis, measure_cell, Curve, Stage};
use zkperf::machine::CpuProfile;
use zkperf::scale::SimCores;

fn main() {
    let constraints = 1 << 10;
    println!("characterizing the exponentiation workload ({constraints} constraints, BN128)\n");

    let mut all = Vec::new();
    for cpu in CpuProfile::paper_cpus() {
        println!("simulating on {} ...", cpu.name);
        let cell = measure_cell(Curve::Bn128, &cpu, constraints, &Stage::ALL)
            .expect("example cell measures");
        all.extend(cell);
    }

    println!("\n--- execution time (§IV-B) ---");
    println!("{}", analysis::render_exec_time(&analysis::exec_time_breakdown(&all)));

    println!("--- top-down microarchitecture analysis (Fig. 4) ---");
    println!("{}", analysis::render_topdown(&analysis::topdown_rows(&all)));

    println!("--- memory analysis (Fig. 5 / Tables II-III) ---");
    println!("{}", analysis::render_load_store(&analysis::load_store_rows(&all)));
    println!("{}", analysis::render_mpki(&analysis::mpki_table(&all)));
    println!("{}", analysis::render_bandwidth(&analysis::bandwidth_table(&all)));

    println!("--- code analysis (Tables IV-V) ---");
    println!("{}", analysis::render_hot_functions(&analysis::hot_functions(&all, 5)));
    println!("{}", analysis::render_opcode_mix(&analysis::opcode_mix(&all)));

    println!("--- scalability analysis (Fig. 6 / Table VI, simulated i9) ---");
    let i9: Vec<_> = all
        .iter()
        .filter(|m| m.machine.cpu == "i9-13900K")
        .cloned()
        .collect();
    let machine = SimCores::i9_13900k();
    let ss = analysis::strong_scaling(&i9, &machine, &analysis::STRONG_SCALING_THREADS);
    println!("{}", analysis::render_scaling(&ss));
}
