//! Quickstart: prove and verify `y = x³` with Groth16 on BN254.
//!
//! Run with `cargo run --release --example quickstart`.

use zkperf::circuit::lang;
use zkperf::ec::Bn254;
use zkperf::ff::{bn254::Fr, Field};
use zkperf::groth16::{prove, setup, verify};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile: the paper's Fig. 2 circuit, written in the suite's
    //    circom-flavoured language.
    let source = "circuit cube { public input x; output y = x * x * x; }";
    let circuit = lang::compile::<Fr>(source)?;
    println!(
        "compiled `{}`: {} constraints, {} wires",
        circuit.name(),
        circuit.r1cs().num_constraints(),
        circuit.r1cs().num_wires()
    );

    // 2. Setup: trusted parameter generation.
    let mut rng = zkperf::ff::test_rng();
    let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng)?;
    println!("setup done: {} IC elements in the verification key", pk.vk.ic.len());

    // 3. Witness: x = 3 (public) ⇒ y = 27.
    let witness = circuit.generate_witness(&[Fr::from_u64(3)], &[])?;
    println!("witness: y = {}", witness.public()[1]);

    // 4. Prove.
    let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng)?;
    println!("proof generated ({} bytes uncompressed)", proof.size_bytes());

    // 5. Verify.
    let ok = verify::<Bn254>(&pk.vk, &proof, witness.public())?;
    println!("verification: {}", if ok { "ACCEPT" } else { "REJECT" });
    assert!(ok);

    // A wrong public statement is rejected.
    let wrong = [Fr::one(), Fr::from_u64(28), Fr::from_u64(3)];
    assert!(!verify::<Bn254>(&pk.vk, &proof, &wrong)?);
    println!("forged statement (y = 28): REJECT, as it should be");
    Ok(())
}
