//! Range proof: show a secret value fits in 16 bits (e.g. "my age is a
//! sane number") without revealing it.
//!
//! Run with `cargo run --release --example range_proof`.

use zkperf::circuit::library::range_check;
use zkperf::ec::Bn254;
use zkperf::ff::{bn254::Fr, Field};
use zkperf::groth16::{prove, setup, verify};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const BITS: usize = 16;
    let circuit = range_check::<Fr>(BITS);
    println!(
        "range circuit ({} bits): {} constraints",
        BITS,
        circuit.r1cs().num_constraints()
    );
    let mut rng = zkperf::ff::test_rng();
    let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng)?;

    // The secret value stays private; its square is the public statement.
    let secret = Fr::from_u64(31337);
    let witness = circuit.generate_witness(&[], &[secret])?;
    let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng)?;
    let ok = verify::<Bn254>(&pk.vk, &proof, witness.public())?;
    println!("range proof for a secret value: {}", if ok { "ACCEPT" } else { "REJECT" });
    assert!(ok);

    // A value outside the range cannot even produce a witness.
    let too_big = Fr::from_u64(1 << BITS);
    assert!(circuit.generate_witness(&[], &[too_big]).is_err());
    println!("witness for an out-of-range value: refused, as it should be");
    Ok(())
}
