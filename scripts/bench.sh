#!/usr/bin/env bash
# Benchmark-regression harness.
#
# Runs the wall-clock benches (kernel micro-benches plus the combined
# setup+prove path on the exponentiation workloads at 2^10..2^14), writes
# BENCH_results.json, and compares against the committed
# BENCH_baseline.json with a configurable threshold:
#
#   scripts/bench.sh                      # full run + comparison
#   ZKPERF_BENCH_THRESHOLD=0.10 scripts/bench.sh
#   scripts/bench.sh --smoke              # kernels only (tier-1 gate)
#
# If no baseline exists yet, the fresh results are seeded as the baseline.
# Exit code 2 means a benchmark regressed past the threshold.

set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${ZKPERF_BENCH_THRESHOLD:-0.25}"

echo "==> cargo build --release -p zkperf-bench"
cargo build --release --offline -p zkperf-bench --bin bench_regression

echo "==> bench_regression (threshold ${THRESHOLD})"
./target/release/bench_regression \
    --out BENCH_results.json \
    --baseline BENCH_baseline.json \
    --threshold "${THRESHOLD}" \
    "$@"

if [ ! -f BENCH_baseline.json ]; then
    cp BENCH_results.json BENCH_baseline.json
    echo "==> seeded BENCH_baseline.json from this run"
fi
