#!/usr/bin/env bash
# Benchmark-regression harness.
#
# Runs the wall-clock benches (kernel micro-benches plus the combined
# setup+prove path on the exponentiation workloads at 2^10..2^14), writes
# BENCH_results.json, and compares against the committed
# BENCH_baseline.json with a configurable threshold:
#
#   scripts/bench.sh                      # full run + comparison
#   ZKPERF_BENCH_THRESHOLD=0.10 scripts/bench.sh
#   scripts/bench.sh --smoke              # kernels only (tier-1 gate)
#   scripts/bench.sh --large              # + MSM 2^18..2^22, NTT 2^18..2^22
#
# --large appends the big-domain sweep (GLV MSM bucket pressure, the
# four-step NTT crossover, the 2^18–2^22 scaling trajectory) to
# BENCH_results.json. The committed baseline is refreshed with --large at
# ZKPERF_THREADS=1, so the big kernels gate like-for-like along with the
# small ones; comparison still only covers entries present in both
# reports, so a --smoke run against the full baseline stays valid.
#
# If no baseline exists yet, the fresh results are seeded as the baseline.
# Exit code 2 means a benchmark regressed past the threshold.

set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${ZKPERF_BENCH_THRESHOLD:-0.25}"

echo "==> cargo build --release -p zkperf-bench"
cargo build --release --offline -p zkperf-bench --bin bench_regression

echo "==> bench_regression (threshold ${THRESHOLD})"
./target/release/bench_regression \
    --out BENCH_results.json \
    --baseline BENCH_baseline.json \
    --threshold "${THRESHOLD}" \
    "$@"

if [ ! -f BENCH_baseline.json ]; then
    cp BENCH_results.json BENCH_baseline.json
    echo "==> seeded BENCH_baseline.json from this run"
fi

# 1-vs-N-thread smoke comparison: the same reduced kernel suite at one
# thread and at N (ZKPERF_THREADS if set, else the host's core count).
# The comparison is informational — thread counts differ, so the
# regression gate is skipped by design; it exists to eyeball real
# multicore speedup (flat on a single-core host).
N="${ZKPERF_THREADS:-$(nproc 2>/dev/null || echo 1)}"
if [ "${N}" -gt 1 ]; then
    echo "==> 1-vs-${N}-thread smoke comparison"
    T1_JSON="$(mktemp)"
    trap 'rm -f "${T1_JSON}"' EXIT
    ZKPERF_THREADS=1 ./target/release/bench_regression --smoke --out "${T1_JSON}"
    ZKPERF_THREADS="${N}" ./target/release/bench_regression --smoke \
        --baseline "${T1_JSON}"
else
    echo "==> single-core host (or ZKPERF_THREADS=1): skipping 1-vs-N smoke comparison"
fi
