#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
#
#   1. release build of the whole workspace
#   2. the full test suite (unit + integration + property tests)
#   3. clippy with -D warnings
#
# Library crates (zkperf-io, zkperf-groth16, zkperf-core,
# zkperf-resilience) additionally deny clippy::unwrap_used and
# clippy::expect_used outside #[cfg(test)] via attributes at the top of
# their lib.rs, so step 3 also enforces the panic-free-hot-path policy;
# tests and binaries may still unwrap.
#
# The build environment is fully offline (deps are vendored under
# vendor/), hence --offline everywhere.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

# Proofs and measurements must be byte-identical at any pool size, so the
# determinism suites run twice: once serial, once on a 4-thread pool.
# (Tests that need other counts call pool::set_threads explicitly.)
echo "==> determinism suites at ZKPERF_THREADS=1 and 4"
ZKPERF_THREADS=1 cargo test -q --offline --test determinism --test thread_determinism
ZKPERF_THREADS=4 cargo test -q --offline --test determinism --test thread_determinism

# Fixed-seed differential fuzz smoke tier: every optimized kernel against
# its slow in-tree reference plus the soundness-negative mutation audit.
# The seed is pinned (fuzz_lite's built-in default) so this tier is fully
# deterministic; on divergence fuzz_lite prints a ready-to-paste
# ZKPERF_TESTKIT_SEED=... replay command for the single failing case.
# Deeper runs: ZKPERF_TESTKIT_SEED=$RANDOM ./target/release/fuzz_lite --iters 64
echo "==> fuzz_lite fixed-seed smoke tier"
if ! ./target/release/fuzz_lite --iters 8; then
    echo "fuzz_lite found diverging cases; paste a replay line from above" >&2
    exit 1
fi

# The GLV lattice decomposition guards every scalar multiplication on the
# G1 groups, so its oracles get a deeper dedicated pass: decompose
# identity (k1 + λ·k2 ≡ k mod r) on boundary scalars, GLV MSM and the
# mul_windowed Straus route against double-and-add.
echo "==> fuzz_lite GLV tier"
if ! ./target/release/fuzz_lite --only glv --iters 16; then
    echo "fuzz_lite found GLV divergences; paste a replay line from above" >&2
    exit 1
fi

# The twisted-curve pairing engine sits under every Groth16/PLONK
# verification, so its oracles get a dedicated pass: the fast path against
# the untwisted serial reference bit-for-bit, bilinearity, non-degeneracy,
# identity/negated inputs, prepared G2 lines, and the mismatched-length
# truncation contract on both curves.
echo "==> fuzz_lite pairing tier"
if ! ./target/release/fuzz_lite --only pairing --iters 16; then
    echo "fuzz_lite found pairing divergences; paste a replay line from above" >&2
    exit 1
fi

# The out-of-core proving pipeline must be invisible in the artifacts:
# budgeted setup/prove, the streamed .zkey file, and N-thread streaming
# must all produce the bytes the in-memory path produces. The stream
# oracles pin msm_stream folding, budgeted setup/prove, thread-count
# bit-identity, and the on-disk roundtrip against in-memory references.
echo "==> fuzz_lite stream tier"
if ! ./target/release/fuzz_lite --only stream --iters 12; then
    echo "fuzz_lite found streaming divergences; paste a replay line from above" >&2
    exit 1
fi

# STARK tier: the transparent backend's own gate. The backend-trait
# conformance suite drives the satisfied/unsatisfied acceptance circuits
# through Groth16, PLONK, and STARK (accept/reject parity), then the
# fixed-seed stark differential oracles run — Goldilocks vs BigUint,
# Poseidon Merkle vs the shared-nothing reference, FRI fold vs direct
# polynomial evaluation, the transparent roundtrip, and the
# thread-toggling kernels. The conformance pass runs twice: once at the
# default FRI parameters and once with the ZKPERF_STARK_* knobs moved,
# so the env plumbing (blowup 8, 20 queries) is exercised end to end.
echo "==> stark tier: conformance suite at default and knobbed FRI parameters"
cargo test -q --offline --test backend_conformance all_backends_agree_on_the_trait_contract
ZKPERF_STARK_BLOWUP=8 ZKPERF_STARK_QUERIES=20 \
    cargo test -q --offline --test backend_conformance all_backends_agree_on_the_trait_contract
echo "==> stark tier: fuzz_lite fixed-seed stark oracles"
if ! ./target/release/fuzz_lite --only stark --iters 8; then
    echo "fuzz_lite found stark divergences; paste a replay line from above" >&2
    exit 1
fi

# Memory-bounded smoke: a 2^16 circuit proved under a 32 MiB budget —
# smaller than its in-memory working set — must complete and byte-match
# the unbudgeted run, both resident-budgeted and through the streamed
# .zkey file. Exit code 2 means the streaming pipeline changed the bytes.
echo "==> stream_smoke: 2^16 under a 32 MiB budget"
if ! ./target/release/stream_smoke --log2 16 --budget 32M --threads 1,4; then
    echo "stream_smoke failed: budgeted proving diverged or crashed" >&2
    exit 1
fi

# Serving smoke tier: replay a fixed-seed open-loop trace through the
# zkperf-serve daemon with fault injection armed. The loadgen exits
# non-zero on any panic, any accepted-but-unaccounted job, any
# deadline-accounting error, or any served proof whose bytes differ from
# the serial reference pipeline — the service-level determinism and
# fault-tolerance contract.
echo "==> serve_smoke: loadgen under fixed-seed ZKPERF_CHAOS"
if ! ZKPERF_CHAOS=20240808 ./target/release/loadgen --jobs 32 --seed 42; then
    echo "serve_smoke failed: see loadgen accounting errors above" >&2
    exit 1
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy -q --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint step" >&2
fi

# Smoke bench: reduced-size kernel micro-benches against the committed
# baseline, failing on any kernel regressing past the threshold (default
# 25%; override with ZKPERF_BENCH_THRESHOLD). Catches "tests still pass
# but the fast path quietly fell off a cliff" changes. The full suite
# (with stage-level speedup numbers) lives in scripts/bench.sh.
echo "==> smoke bench vs BENCH_baseline.json"
./target/release/bench_regression --smoke --baseline BENCH_baseline.json \
    --threshold "${ZKPERF_BENCH_THRESHOLD:-0.25}"

echo "==> all checks passed"
