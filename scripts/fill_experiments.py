#!/usr/bin/env python3
"""Splice the rendered results/*.txt tables into EXPERIMENTS.md at the
<!-- MEASURED:name --> markers (idempotent)."""
import re, sys, pathlib

root = pathlib.Path(__file__).parent.parent
mapping = {
    "exec_time": "exec_time.txt",
    "fig4": "fig4_topdown.txt",
    "fig5": "fig5_loads_stores.txt",
    "table2": "table2_mpki.txt",
    "table3": "table3_bandwidth.txt",
    "table4": "table4_functions.txt",
    "fig6": "fig6_strong_scaling.txt",
    "fig7": "fig7_weak_scaling.txt",
    "table5": "table5_opcode_mix.txt",
    "table6": "table6_parallelism.txt",
    "plonk": "plonk_vs_groth16.txt",
}
text = (root / "EXPERIMENTS.md").read_text()
for key, fname in mapping.items():
    path = root / "results" / fname
    if not path.exists():
        print(f"missing {fname}, skipping", file=sys.stderr)
        continue
    body = path.read_text().rstrip()
    # Truncate very long outputs for the document; full data stays in results/.
    lines = body.splitlines()
    if len(lines) > 40:
        body = "\n".join(lines[:40]) + f"\n... ({len(lines)-40} more rows in results/{fname})"
    block = f"<!-- MEASURED:{key} -->\n```text\n{body}\n```\n<!-- /MEASURED:{key} -->"
    pattern = re.compile(
        rf"<!-- MEASURED:{key} -->(?:.*?<!-- /MEASURED:{key} -->)?",
        re.S,
    )
    text, n = pattern.subn(block, text)
    assert n == 1, key
(root / "EXPERIMENTS.md").write_text(text)
print("EXPERIMENTS.md updated")
