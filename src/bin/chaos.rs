//! `chaos` — the zkperf fault-injection suite.
//!
//! Builds a small Groth16 pipeline, serializes every artifact
//! (`.r1cs`/`.wtns`/`.zkey`/`.vkey`/`.proof`), then attacks the suite with
//! a deterministic, seeded fault plan:
//!
//! 1. **Artifact corruption** — seeded bit flips and truncations of every
//!    artifact, fed back through the readers. Each corrupted read must
//!    surface a typed [`FormatError`](zkperf_io::FormatError); with the
//!    v2 checksummed containers a corrupt artifact that parses cleanly is
//!    a violation, and a passing verification of corrupt data doubly so.
//! 2. **Faulty I/O layers** — writers that short-write or error mid-file
//!    and readers that stop early, wrapped around every codec path.
//! 3. **Stage-boundary faults** — pipelines run with `ZKPERF_CHAOS` armed,
//!    so stage boundaries trip [`StageError::Injected`]; the resilient
//!    runner must contain every failure.
//!
//! Every check runs under `catch_unwind`: a single panic anywhere is a
//! violation. Exit status is 0 only when no violations occurred.
//!
//! Usage: `chaos [seed]`, or set `ZKPERF_CHAOS` (any non-off value arms
//! the same seed grammar). Failing runs print the seed for exact replay.

use std::panic::{self, AssertUnwindSafe};

use rand::SeedableRng;
use zkperf_circuit::library::exponentiate;
use zkperf_ec::Bn254;
use zkperf_ff::bn254::Fr;
use zkperf_ff::Field;
use zkperf_groth16::{contribute, prove, setup, verify};
use zkperf_io::{
    read_proof, read_r1cs, read_vkey, read_witness, read_zkey, write_proof, write_r1cs,
    write_vkey, write_witness, write_zkey,
};
use zkperf_resilience::{
    run_with_retry, ChaosMode, FaultKind, FaultyReader, FaultyWriter, Quarantine, RetryPolicy,
    RunOutcome,
};

/// Corruption rounds per artifact per fault shape.
const ROUNDS: usize = 48;

#[derive(Default)]
struct Tally {
    checks: u64,
    faults: u64,
    violations: u64,
}

impl Tally {
    /// Runs one fault check, counting a panic or an `Err(description)`
    /// as a violation.
    fn check(&mut self, what: &str, f: impl FnOnce() -> Result<(), String>) {
        self.checks += 1;
        match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(Ok(())) => {}
            Ok(Err(why)) => {
                self.violations += 1;
                eprintln!("[chaos] VIOLATION ({what}): {why}");
            }
            Err(_) => {
                self.violations += 1;
                eprintln!("[chaos] VIOLATION ({what}): panicked");
            }
        }
    }
}

struct Artifacts {
    r1cs: Vec<u8>,
    wtns: Vec<u8>,
    zkey: Vec<u8>,
    vkey: Vec<u8>,
    proof: Vec<u8>,
}

fn build_artifacts() -> Artifacts {
    let circuit = exponentiate::<Fr>(8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xc4a0_5eed);
    let mut pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).expect("chaos setup");
    contribute::<Bn254, _>(&mut pk, &mut rng);
    let witness = circuit
        .generate_witness(&[Fr::from_u64(3)], &[])
        .expect("chaos witness");
    let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng).expect("chaos proof");
    assert!(
        verify::<Bn254>(&pk.vk, &proof, witness.public()).expect("chaos verify"),
        "the uncorrupted pipeline must verify"
    );

    let mut a = Artifacts {
        r1cs: Vec::new(),
        wtns: Vec::new(),
        zkey: Vec::new(),
        vkey: Vec::new(),
        proof: Vec::new(),
    };
    write_r1cs(&mut a.r1cs, circuit.r1cs()).expect("encode r1cs");
    write_witness(&mut a.wtns, witness.full()).expect("encode witness");
    write_zkey::<Bn254>(&mut a.zkey, &pk).expect("encode zkey");
    write_vkey::<Bn254>(&mut a.vkey, &pk.vk).expect("encode vkey");
    write_proof::<Bn254>(&mut a.proof, &proof).expect("encode proof");
    a
}

/// Whether corrupted `bytes` of artifact `name` are handled safely:
/// a typed read error passes; a clean parse of corrupt checksummed bytes
/// fails the check (and is where a passing verification would surface).
fn read_corrupt(name: &str, bytes: &[u8], artifacts: &Artifacts) -> Result<(), String> {
    let parsed_cleanly = match name {
        "r1cs" => read_r1cs::<Fr>(&mut &bytes[..]).is_ok(),
        "wtns" => read_witness::<Fr>(&mut &bytes[..]).is_ok(),
        "zkey" => read_zkey::<Bn254>(&mut &bytes[..]).is_ok(),
        "vkey" => {
            // If both vkey and proof somehow still parse, verification of
            // the untouched proof under a corrupted key must not pass.
            match (
                read_vkey::<Bn254>(&mut &bytes[..]),
                read_proof::<Bn254>(&mut &artifacts.proof[..]),
            ) {
                (Ok(vk), Ok(proof)) => {
                    let circuit = exponentiate::<Fr>(8);
                    let w = circuit
                        .generate_witness(&[Fr::from_u64(3)], &[])
                        .map_err(|e| format!("witness rebuild failed: {e}"))?;
                    if verify::<Bn254>(&vk, &proof, w.public()) == Ok(true) {
                        return Err("corrupt vkey accepted a proof".into());
                    }
                    true
                }
                _ => false,
            }
        }
        "proof" => {
            match (
                read_proof::<Bn254>(&mut &bytes[..]),
                read_vkey::<Bn254>(&mut &artifacts.vkey[..]),
            ) {
                (Ok(proof), Ok(vk)) => {
                    let circuit = exponentiate::<Fr>(8);
                    let w = circuit
                        .generate_witness(&[Fr::from_u64(3)], &[])
                        .map_err(|e| format!("witness rebuild failed: {e}"))?;
                    if verify::<Bn254>(&vk, &proof, w.public()) == Ok(true) {
                        return Err("corrupt proof verified".into());
                    }
                    true
                }
                _ => false,
            }
        }
        other => return Err(format!("unknown artifact {other}")),
    };
    if parsed_cleanly {
        return Err(format!(
            "corrupt {name} parsed cleanly despite per-section checksums"
        ));
    }
    Ok(())
}

fn corruption_pass(mode: ChaosMode, artifacts: &Artifacts, tally: &mut Tally) {
    let targets: [(&str, &[u8]); 5] = [
        ("r1cs", &artifacts.r1cs),
        ("wtns", &artifacts.wtns),
        ("zkey", &artifacts.zkey),
        ("vkey", &artifacts.vkey),
        ("proof", &artifacts.proof),
    ];
    for (name, bytes) in targets {
        let Some(mut plan) = mode.plan_for(&format!("corrupt:{name}")) else {
            return;
        };
        for round in 0..ROUNDS {
            let fault = if round % 2 == 0 {
                plan.bit_flip(bytes.len())
            } else {
                plan.truncation(bytes.len())
            };
            let Some(fault) = fault else { continue };
            let mut corrupt = bytes.to_vec();
            fault.apply(&mut corrupt);
            if corrupt == *bytes {
                continue; // e.g. truncation at full length
            }
            tally.faults += 1;
            tally.check(&format!("{name} {fault:?}"), || {
                read_corrupt(name, &corrupt, artifacts)
            });
        }
    }
}

fn io_fault_pass(mode: ChaosMode, artifacts: &Artifacts, tally: &mut Tally) {
    let circuit = exponentiate::<Fr>(8);
    let Some(mut plan) = mode.plan_for("io") else {
        return;
    };
    for _ in 0..ROUNDS {
        let Some(fault) = plan.io_fault(artifacts.zkey.len()) else {
            continue;
        };
        tally.faults += 1;
        match fault {
            FaultKind::ShortWrite { after } | FaultKind::FailWrite { after } => {
                tally.check(&format!("write under {fault:?}"), || {
                    let mut sink = FaultyWriter::new(Vec::new(), fault);
                    match write_r1cs(&mut sink, circuit.r1cs()) {
                        Err(_) => Ok(()), // typed error: contained
                        // A budget at least the encoding's size never
                        // interrupts anything; success is legitimate.
                        Ok(()) if after >= artifacts.r1cs.len() => Ok(()),
                        Ok(()) => Err("interrupted write reported success".into()),
                    }
                });
            }
            _ => {
                tally.check(&format!("read under {fault:?}"), || {
                    let mut src = FaultyReader::new(&artifacts.zkey[..], fault);
                    match read_zkey::<Bn254>(&mut src) {
                        Err(_) => Ok(()),
                        // A short read that still yields a full key means
                        // the budget exceeded the file; that is fine.
                        Ok(_) => Ok(()),
                    }
                });
            }
        }
    }
}

fn stage_boundary_pass(tally: &mut Tally) {
    use zkperf_core::{Groth16Backend, Stage, StageError, Workload};
    let policy = RetryPolicy::once();
    let mut quarantine = Quarantine::new(1);
    let mut injected = 0u64;
    for log in 2..=5u32 {
        let label = format!("pipeline:2^{log}");
        let outcome = run_with_retry(&policy, &label, &mut quarantine, move || {
            let mut w = Workload::<Groth16Backend<Bn254>>::exponentiate(1 << log);
            for stage in Stage::ALL {
                w.run_stage(stage)?;
            }
            Ok::<_, StageError>(w.verified() == Some(true))
        });
        tally.checks += 1;
        match outcome {
            RunOutcome::Ok { value: true, .. } => {}
            RunOutcome::Ok { value: false, .. } => {
                tally.violations += 1;
                eprintln!("[chaos] VIOLATION ({label}): clean pipeline failed to verify");
            }
            RunOutcome::Failed { error, .. } => {
                // Injected stage faults are the expected failure mode.
                if error.contains("chaos fault injected") {
                    injected += 1;
                    tally.faults += 1;
                } else {
                    tally.violations += 1;
                    eprintln!("[chaos] VIOLATION ({label}): unexpected error: {error}");
                }
            }
            RunOutcome::Panicked { message, .. } => {
                tally.violations += 1;
                eprintln!("[chaos] VIOLATION ({label}): panicked: {message}");
            }
            RunOutcome::TimedOut { .. } | RunOutcome::Quarantined => {
                tally.violations += 1;
                eprintln!("[chaos] VIOLATION ({label}): timed out or quarantined");
            }
        }
    }
    eprintln!("[chaos] stage boundaries: {injected} injected fault(s) contained");
}

fn main() {
    let seed_arg = std::env::args().nth(1);
    let mode = match (&seed_arg, std::env::var("ZKPERF_CHAOS")) {
        (Some(raw), _) => ChaosMode::parse(raw),
        (None, Ok(raw)) => ChaosMode::parse(&raw),
        (None, Err(_)) => ChaosMode::Seeded(0xc4a0_5eed),
    };
    let seed = match mode {
        ChaosMode::Seeded(seed) => seed,
        ChaosMode::Off => {
            eprintln!("[chaos] knob parsed to 'off'; defaulting to seed 1");
            1
        }
    };
    let mode = ChaosMode::Seeded(seed);
    eprintln!("[chaos] seed {seed} (replay with `chaos {seed}`)");

    // Built with the knob disarmed: the uncorrupted pipeline must verify.
    std::env::remove_var("ZKPERF_CHAOS");
    let artifacts = build_artifacts();

    let mut tally = Tally::default();
    corruption_pass(mode, &artifacts, &mut tally);
    io_fault_pass(mode, &artifacts, &mut tally);
    // Arm the knob for the in-process stage boundaries, whatever spelling
    // the seed arrived in.
    std::env::set_var("ZKPERF_CHAOS", seed.to_string());
    stage_boundary_pass(&mut tally);
    std::env::remove_var("ZKPERF_CHAOS");

    eprintln!(
        "[chaos] {} checks, {} faults injected, {} violation(s)",
        tally.checks, tally.faults, tally.violations
    );
    if tally.violations > 0 {
        eprintln!("[chaos] FAIL: replay with `chaos {seed}`");
        std::process::exit(1);
    }
    eprintln!("[chaos] OK: every fault surfaced as a typed error or failed verification");
}
