//! The zkperf command-line driver — a snarkjs-style workflow over files.
//!
//! ```text
//! zkperf compile  <circuit.zkc> <out.r1cs>
//! zkperf setup    <in.r1cs> <out.zkey> <out.vkey>
//! zkperf witness  <circuit.zkc> <out.wtns> [--public v]... [--private v]...
//! zkperf prove    <in.zkey> <in.r1cs> <in.wtns> <out.proof>
//! zkperf verify   <in.vkey> <in.proof> <public values>...
//! zkperf info     <file>
//! ```
//!
//! All commands run on BN254 (the toolchain default, like circom). Values
//! are decimal field elements.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read};
use std::process::ExitCode;

use zkperf::circuit::lang;
use zkperf::ec::Bn254;
use zkperf::ff::{bn254::Fr, Field, PrimeField};
use zkperf::groth16;
use zkperf::io as zkio;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zkperf compile  <circuit.zkc> <out.r1cs>\n  zkperf setup    <in.r1cs> <out.zkey> <out.vkey>\n  zkperf witness  <circuit.zkc> <out.wtns> [--public v]... [--private v]...\n  zkperf prove    <in.zkey> <in.r1cs> <in.wtns> <out.proof>\n  zkperf verify   <in.vkey> <in.proof> <public values>...\n  zkperf info     <file>"
    );
    ExitCode::from(2)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["compile", src_path, out] => {
            let source = std::fs::read_to_string(src_path)?;
            let circuit = lang::compile::<Fr>(&source)?;
            let mut w = BufWriter::new(File::create(out)?);
            zkio::write_r1cs(&mut w, circuit.r1cs())?;
            println!(
                "compiled `{}`: {} constraints, {} wires -> {out}",
                circuit.name(),
                circuit.r1cs().num_constraints(),
                circuit.r1cs().num_wires()
            );
        }
        ["setup", r1cs_path, zkey_out, vkey_out] => {
            let r1cs = zkio::read_r1cs::<Fr>(&mut BufReader::new(File::open(r1cs_path)?))?;
            let mut rng = rand::thread_rng();
            let mut pk = groth16::setup::<Bn254, _>(&r1cs, &mut rng)?;
            groth16::contribute::<Bn254, _>(&mut pk, &mut rng);
            zkio::write_zkey(&mut BufWriter::new(File::create(zkey_out)?), &pk)?;
            zkio::write_vkey(&mut BufWriter::new(File::create(vkey_out)?), &pk.vk)?;
            println!(
                "setup done ({} constraints): {zkey_out}, {vkey_out}",
                r1cs.num_constraints()
            );
        }
        ["witness", src_path, out, rest @ ..] => {
            let source = std::fs::read_to_string(src_path)?;
            let circuit = lang::compile::<Fr>(&source)?;
            let mut public = Vec::new();
            let mut private = Vec::new();
            let mut it = rest.iter();
            while let Some(&flag) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                let parsed = Fr::from_str_radix(value, 10)?;
                match flag {
                    "--public" => public.push(parsed),
                    "--private" => private.push(parsed),
                    other => return Err(format!("unknown flag {other}").into()),
                }
            }
            let witness = circuit.generate_witness(&public, &private)?;
            zkio::write_witness(&mut BufWriter::new(File::create(out)?), witness.full())?;
            println!(
                "witness with {} wires (public: {:?}) -> {out}",
                witness.full().len(),
                witness
                    .public()
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
            );
        }
        ["prove", zkey_path, r1cs_path, wtns_path, out] => {
            let pk = zkio::read_zkey::<Bn254>(&mut BufReader::new(File::open(zkey_path)?))?;
            let r1cs = zkio::read_r1cs::<Fr>(&mut BufReader::new(File::open(r1cs_path)?))?;
            let values = zkio::read_witness::<Fr>(&mut BufReader::new(File::open(wtns_path)?))?;
            // Re-derive the witness wrapper by checking satisfaction.
            r1cs.check_satisfied(&values)
                .map_err(|i| format!("witness violates constraint {i}"))?;
            // groth16::prove consumes a Witness; rebuild one through the
            // circuit-free path by proving over the raw vector.
            let witness = zkperf::circuit::Witness::from_vector(
                values,
                r1cs.num_public_wires(),
            );
            let mut rng = rand::thread_rng();
            let proof = groth16::prove::<Bn254, _>(&pk, &r1cs, &witness, &mut rng)?;
            zkio::write_proof(&mut BufWriter::new(File::create(out)?), &proof)?;
            println!("proof ({} bytes uncompressed) -> {out}", proof.size_bytes());
        }
        ["verify", vkey_path, proof_path, publics @ ..] => {
            let vk = zkio::read_vkey::<Bn254>(&mut BufReader::new(File::open(vkey_path)?))?;
            let proof = zkio::read_proof::<Bn254>(&mut BufReader::new(File::open(proof_path)?))?;
            let mut public = vec![Fr::one()];
            for v in publics {
                public.push(Fr::from_str_radix(v, 10)?);
            }
            let ok = groth16::verify::<Bn254>(&vk, &proof, &public)?;
            println!("{}", if ok { "ACCEPT" } else { "REJECT" });
            if !ok {
                return Err("proof rejected".into());
            }
        }
        ["info", path] => {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let magic: [u8; 4] = bytes
                .get(..4)
                .ok_or("file too short")?
                .try_into()
                .expect("4 bytes");
            let kind = match &magic {
                b"zkr1" => "r1cs constraint system",
                b"zkwt" => "witness vector",
                b"zkpk" => "Groth16 proving key (zkey)",
                b"zkvk" => "Groth16 verification key",
                b"zkpf" => "Groth16 proof",
                _ => "unknown",
            };
            println!(
                "{path}: {kind}, {} bytes, container version {}",
                bytes.len(),
                bytes
                    .get(4..8)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                    .unwrap_or(0)
            );
        }
        _ => {
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    if std::env::args().len() < 2 {
        return usage();
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
