//! # zkperf
//!
//! A from-scratch Rust reproduction of *"Performance Analysis of
//! Zero-Knowledge Proofs"* (IISWC 2024): a complete zk-SNARK stack (fields,
//! curves, pairings, R1CS, Groth16) instrumented for microarchitectural
//! characterization, plus the measurement framework that regenerates every
//! table and figure of the paper on a simulated-CPU substrate.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`ff`] — prime fields, extension towers, big integers;
//! * [`ec`] — BN254/BLS12-381 groups, MSM, pairings;
//! * [`poly`] — NTT domains and dense polynomials;
//! * [`circuit`] — circuit DSL, circom-like language, R1CS, witness solver;
//! * [`groth16`] — setup / prove / verify (plus ceremony contributions);
//! * [`plonk`] — the PlonK comparison scheme on KZG commitments;
//! * [`stark`] — the transparent FRI/STARK backend over Goldilocks;
//! * [`io`] — `.r1cs`/`.wtns`/`.zkey`-style binary file formats;
//! * [`pool`] — the deterministic work-stealing thread pool;
//! * [`trace`] — the event-tracing layer;
//! * [`machine`] — the trace-driven CPU simulator;
//! * [`scale`] — simulated-multicore scaling and Amdahl/Gustafson fits;
//! * [`core`] — the characterization framework (the paper's contribution);
//! * [`resilience`] — retry policies, fault injection, chaos plumbing;
//! * [`serve`] — the fault-tolerant proving-as-a-service daemon.
//!
//! # Quickstart
//!
//! ```
//! use zkperf::circuit::library::exponentiate;
//! use zkperf::ec::Bn254;
//! use zkperf::ff::{bn254::Fr, Field};
//! use zkperf::groth16::{prove, setup, verify};
//!
//! let circuit = exponentiate::<Fr>(8);
//! let mut rng = zkperf::ff::test_rng();
//! let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng)?;
//! let witness = circuit.generate_witness(&[Fr::from_u64(3)], &[])?;
//! let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng)?;
//! assert!(verify::<Bn254>(&pk.vk, &proof, witness.public())?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use zkperf_circuit as circuit;
pub use zkperf_core as core;
pub use zkperf_ec as ec;
pub use zkperf_ff as ff;
pub use zkperf_groth16 as groth16;
pub use zkperf_io as io;
pub use zkperf_machine as machine;
pub use zkperf_plonk as plonk;
pub use zkperf_poly as poly;
pub use zkperf_pool as pool;
pub use zkperf_resilience as resilience;
pub use zkperf_scale as scale;
pub use zkperf_serve as serve;
pub use zkperf_stark as stark;
pub use zkperf_trace as trace;
