//! Integration: the backend-trait conformance suite.
//!
//! Every `ProverBackend` implementation must present the same contract
//! through the unified trait: setup/prove/verify roundtrips accept a
//! satisfied circuit, the proof codec is the identity, a tampered
//! statement is refused with `Ok(false)` (never a panic or a spurious
//! `Err`), and an unsatisfying witness can never end in an accepted
//! proof. The suite drives the two acceptance workloads — the
//! exponentiation family and Poseidon Merkle membership — through all
//! three backends purely via the trait, with no backend-specific calls.

use zkperf::circuit::{library, Circuit, Witness};
use zkperf::core::{BackendKind, Groth16Backend, PlonkBackend, ProverBackend, StarkBackend};
use zkperf::ec::{Bls12_381, Bn254};
use zkperf::ff::{Field, PrimeField};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Depth of the Merkle-membership acceptance workload.
const MERKLE_DEPTH: usize = 20;

fn exponentiate_fixture<F: PrimeField>(constraints: usize) -> (Circuit<F>, Witness<F>) {
    let circuit = library::exponentiate::<F>(constraints);
    let w = circuit
        .generate_witness(&[F::from_u64(3)], &[])
        .expect("library circuit accepts any base");
    (circuit, w)
}

fn merkle_fixture<F: PrimeField>(depth: usize) -> (Circuit<F>, Witness<F>) {
    let circuit = library::merkle_membership_poseidon::<F>(depth);
    let path: Vec<(F, bool)> = (0..depth)
        .map(|i| (F::from_u64(100 + i as u64), i % 2 == 0))
        .collect();
    let (inputs, _root) = library::merkle_path_inputs_poseidon(F::from_u64(7), &path);
    let w = circuit
        .generate_witness(&[], &inputs)
        .expect("membership witness for an honest path");
    (circuit, w)
}

/// The positive half of the contract: roundtrip acceptance, codec
/// identity, size agreement, and `Ok(false)` on a tampered statement.
fn assert_roundtrip<B: ProverBackend>(circuit: &Circuit<B::Fr>, witness: &Witness<B::Fr>) {
    let label = B::label();
    let mut rng = StdRng::seed_from_u64(0x5eed_c0de);
    let keys = B::setup(circuit.r1cs(), &mut rng)
        .unwrap_or_else(|e| panic!("{label}: setup failed: {e}"));
    let proof = B::prove(&keys, circuit.r1cs(), witness, &mut rng)
        .unwrap_or_else(|e| panic!("{label}: prove failed: {e}"));
    assert!(
        B::verify(&keys, circuit.r1cs(), &proof, witness.public())
            .unwrap_or_else(|e| panic!("{label}: verify errored: {e}")),
        "{label}: valid proof rejected"
    );

    // The codec is the identity and the advertised size is the real size.
    let bytes = B::encode_proof(&proof);
    assert_eq!(
        bytes.len(),
        B::proof_size_bytes(&proof),
        "{label}: proof_size_bytes disagrees with the encoding"
    );
    let decoded = B::decode_proof(&bytes)
        .unwrap_or_else(|e| panic!("{label}: decode of own encoding failed: {e}"));
    assert!(
        B::verify(&keys, circuit.r1cs(), &decoded, witness.public()).unwrap(),
        "{label}: decoded proof rejected"
    );

    // A tampered statement is a clean reject, not an error or a panic.
    let mut tampered = witness.public().to_vec();
    let last = tampered.len() - 1;
    tampered[last] += B::Fr::one();
    assert!(
        !B::verify(&keys, circuit.r1cs(), &proof, &tampered)
            .unwrap_or_else(|e| panic!("{label}: tampered statement errored: {e}")),
        "{label}: tampered statement accepted"
    );

    // Key sizing is positive for trusted-setup backends and the
    // transparency flag matches the backend kind.
    let keys_size = B::keys_size_bytes(&keys);
    match B::kind() {
        BackendKind::Stark => assert!(B::transparent_setup(), "{label}: STARK must be transparent"),
        _ => {
            assert!(!B::transparent_setup(), "{label}: SRS backend claims transparency");
            assert!(keys_size > 0, "{label}: zero-sized proving keys");
        }
    }
}

/// The negative half: an unsatisfying witness either fails in `prove`
/// with a typed error, or produces a proof that `verify` refuses — it
/// must never end in acceptance.
fn assert_unsatisfied_rejected<B: ProverBackend>(
    circuit: &Circuit<B::Fr>,
    witness: &Witness<B::Fr>,
) {
    let label = B::label();
    let mut rng = StdRng::seed_from_u64(0x5eed_c0de);
    let keys = B::setup(circuit.r1cs(), &mut rng).unwrap();
    let mut bad = witness.full().to_vec();
    let last = bad.len() - 1;
    bad[last] += B::Fr::one();
    let bad = Witness::from_vector(bad, circuit.r1cs().num_public_wires());
    match B::prove(&keys, circuit.r1cs(), &bad, &mut rng) {
        Err(_) => {} // a typed refusal at prove time satisfies the contract
        Ok(proof) => assert!(
            !B::verify(&keys, circuit.r1cs(), &proof, witness.public()).unwrap(),
            "{label}: proof from an unsatisfying witness accepted"
        ),
    }
}

fn conformance_pass<B: ProverBackend>(constraints: usize, depth: usize) {
    let (circuit, w) = exponentiate_fixture::<B::Fr>(constraints);
    assert_roundtrip::<B>(&circuit, &w);
    assert_unsatisfied_rejected::<B>(&circuit, &w);
    let (circuit, w) = merkle_fixture::<B::Fr>(depth);
    assert_roundtrip::<B>(&circuit, &w);
}

#[test]
fn all_backends_agree_on_the_trait_contract() {
    // A fast sweep of the full contract — both fixtures, all three
    // backends, accept and reject sides — at a size cheap enough for the
    // default test tier.
    conformance_pass::<Groth16Backend<Bn254>>(1 << 8, 4);
    conformance_pass::<Groth16Backend<Bls12_381>>(1 << 8, 4);
    conformance_pass::<PlonkBackend<Bn254>>(1 << 8, 4);
    conformance_pass::<StarkBackend>(1 << 8, 4);
}

#[test]
fn acceptance_workloads_run_through_all_three_backends() {
    // The acceptance bar from the backend-refactor issue: exponentiate
    // 2^14 and Merkle membership at depth 20, setup → prove → verify,
    // dispatched purely through the unified trait.
    conformance_pass::<Groth16Backend<Bn254>>(1 << 14, MERKLE_DEPTH);
    conformance_pass::<PlonkBackend<Bn254>>(1 << 14, MERKLE_DEPTH);
    conformance_pass::<StarkBackend>(1 << 14, MERKLE_DEPTH);
}

#[test]
fn backend_labels_and_kinds_are_distinct() {
    let labels = [
        Groth16Backend::<Bn254>::label(),
        Groth16Backend::<Bls12_381>::label(),
        PlonkBackend::<Bn254>::label(),
        PlonkBackend::<Bls12_381>::label(),
        StarkBackend::label(),
    ];
    let distinct: std::collections::HashSet<&str> = labels.iter().copied().collect();
    assert_eq!(distinct.len(), labels.len(), "duplicate backend labels: {labels:?}");
    assert_eq!(BackendKind::ALL.len(), 3);
}
