//! Integration: the characterization framework reproduces the paper's
//! qualitative findings on a small sweep.

use zkperf::core::{analysis, measure_cell, Curve, Stage};
use zkperf::machine::CpuProfile;
use zkperf::scale::SimCores;

fn sweep(curve: Curve, cpu: &CpuProfile, sizes: &[usize]) -> Vec<zkperf::core::StageMeasurement> {
    let mut out = Vec::new();
    for &n in sizes {
        out.extend(measure_cell(curve, cpu, n, &Stage::ALL).unwrap());
    }
    out
}

#[test]
fn setup_dominates_execution_time() {
    let ms = sweep(Curve::Bn128, &CpuProfile::i9_13900k(), &[256, 512]);
    let rows = analysis::exec_time_breakdown(&ms);
    let pct = |s: Stage| rows.iter().find(|r| r.stage == s).unwrap().percent;
    assert!(
        pct(Stage::Setup) > pct(Stage::Proving),
        "setup {} <= proving {}",
        pct(Stage::Setup),
        pct(Stage::Proving)
    );
    for s in [Stage::Compile, Stage::Witness] {
        assert!(pct(Stage::Setup) > pct(s));
    }
}

#[test]
fn verifying_work_is_constant_in_circuit_size() {
    let cpu = CpuProfile::i7_8650u();
    let ms = sweep(Curve::Bn128, &cpu, &[128, 1024]);
    let verify: Vec<u64> = ms
        .iter()
        .filter(|m| m.stage == Stage::Verifying)
        .map(|m| m.counts.total_uops())
        .collect();
    let ratio = verify[1] as f64 / verify[0] as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "verifying grew by {ratio}× over an 8× size increase"
    );
    // While setup grows with the circuit (its fixed-base tables are a
    // large constant term at these small sizes, so growth is sublinear
    // here; it turns linear past ~2^13).
    let setup: Vec<u64> = ms
        .iter()
        .filter(|m| m.stage == Stage::Setup)
        .map(|m| m.counts.total_uops())
        .collect();
    let setup_growth = setup[1] as f64 / setup[0] as f64;
    assert!(setup_growth > 1.15, "setup growth {setup_growth}");
    assert!(setup_growth > ratio, "setup must outgrow verifying");
}

#[test]
fn setup_has_lowest_mpki_among_heavy_stages() {
    // Paper Table II: setup has the lowest MPKI (0.03-0.08) because its
    // fixed-base tables stream; witness/proving are the cache-hostile ones.
    let ms = sweep(Curve::Bn128, &CpuProfile::i5_11400(), &[512]);
    let mpki = |s: Stage| {
        ms.iter()
            .find(|m| m.stage == s)
            .unwrap()
            .machine
            .llc_load_mpki()
    };
    assert!(mpki(Stage::Setup) <= mpki(Stage::Witness) + 0.5);
}

#[test]
fn interpreted_stages_are_more_frontend_bound_than_compile() {
    let ms = sweep(Curve::Bn128, &CpuProfile::i7_8650u(), &[512]);
    let fe = |s: Stage| {
        ms.iter()
            .find(|m| m.stage == s)
            .unwrap()
            .machine
            .topdown()
            .frontend_bound
    };
    // Witness/verifying run in the interpreted runtime: more front-end
    // pressure than the natively compiled compile stage.
    assert!(fe(Stage::Witness) > fe(Stage::Compile));
    assert!(fe(Stage::Verifying) > fe(Stage::Compile));
}

#[test]
fn proving_is_most_parallel_and_scales_furthest() {
    let cpu = CpuProfile::i9_13900k();
    let ms = sweep(Curve::Bn128, &cpu, &[1024]);
    let machine = SimCores::i9_13900k();
    let curves = analysis::strong_scaling(&ms, &machine, &[1, 2, 4, 8, 16, 32]);
    let speedup_at_32 = |s: Stage| {
        curves
            .iter()
            .find(|c| c.stage == s)
            .unwrap()
            .points
            .last()
            .unwrap()
            .1
    };
    assert!(speedup_at_32(Stage::Proving) > speedup_at_32(Stage::Compile));
    assert!(speedup_at_32(Stage::Proving) > speedup_at_32(Stage::Verifying));
    // Parallelism fits are valid percentages.
    for c in &curves {
        let fit = zkperf::scale::fit::amdahl(&c.points);
        assert!((0.0..=100.0).contains(&fit.serial_pct));
        assert!((fit.serial_pct + fit.parallel_pct - 100.0).abs() < 1e-6);
    }
}

#[test]
fn both_curves_have_similar_stage_character() {
    // Paper: "BN128 and BLS12-381 have similar results across stages".
    let cpu = CpuProfile::i7_8650u();
    let bn = sweep(Curve::Bn128, &cpu, &[256]);
    let bls = sweep(Curve::Bls12_381, &cpu, &[256]);
    for (a, b) in bn.iter().zip(&bls) {
        assert_eq!(a.stage, b.stage);
        let mix_a = a.counts.class_percent(zkperf::trace::OpClass::Compute);
        let mix_b = b.counts.class_percent(zkperf::trace::OpClass::Compute);
        assert!(
            (mix_a - mix_b).abs() < 20.0,
            "{}: BN {mix_a:.1}% vs BLS {mix_b:.1}%",
            a.stage
        );
    }
}
