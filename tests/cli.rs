//! Integration: the `zkperf` CLI binary driven end-to-end over real files.

use std::path::PathBuf;
use std::process::Command;

fn zkperf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zkperf"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zkperf-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_accepts_and_rejects() {
    let dir = tmpdir("flow");
    let src = dir.join("square.zkc");
    std::fs::write(
        &src,
        "circuit square { public input x; private input s; output y = x * x + s - s; }",
    )
    .unwrap();
    let p = |n: &str| dir.join(n).to_string_lossy().into_owned();

    let ok = zkperf()
        .args(["compile", &p("square.zkc"), &p("c.r1cs")])
        .status()
        .unwrap();
    assert!(ok.success());
    assert!(zkperf()
        .args(["setup", &p("c.r1cs"), &p("c.zkey"), &p("c.vkey")])
        .status()
        .unwrap()
        .success());
    assert!(zkperf()
        .args([
            "witness",
            &p("square.zkc"),
            &p("c.wtns"),
            "--public",
            "6",
            "--private",
            "99",
        ])
        .status()
        .unwrap()
        .success());
    assert!(zkperf()
        .args(["prove", &p("c.zkey"), &p("c.r1cs"), &p("c.wtns"), &p("c.proof")])
        .status()
        .unwrap()
        .success());
    // y = 36 for x = 6.
    assert!(zkperf()
        .args(["verify", &p("c.vkey"), &p("c.proof"), "36", "6"])
        .status()
        .unwrap()
        .success());
    // Wrong output rejected with non-zero exit.
    assert!(!zkperf()
        .args(["verify", &p("c.vkey"), &p("c.proof"), "37", "6"])
        .status()
        .unwrap()
        .success());
    // info identifies the files.
    let out = zkperf().args(["info", &p("c.proof")]).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("Groth16 proof"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn bad_usage_and_bad_files_fail_cleanly() {
    let dir = tmpdir("bad");
    // No args → usage, exit 2.
    let status = zkperf().status().unwrap();
    assert_eq!(status.code(), Some(2));
    // Compile error surfaces with position info, non-zero exit.
    let src = dir.join("broken.zkc");
    std::fs::write(&src, "circuit broken { output y = nope; }").unwrap();
    let out = zkperf()
        .args(["compile", &src.to_string_lossy(), &dir.join("x.r1cs").to_string_lossy()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown signal"));
    // Feeding the wrong file kind is a format error, not a panic.
    std::fs::write(dir.join("junk.zkey"), b"zzzz not a container").unwrap();
    let out = zkperf()
        .args([
            "prove",
            &dir.join("junk.zkey").to_string_lossy(),
            &dir.join("junk.zkey").to_string_lossy(),
            &dir.join("junk.zkey").to_string_lossy(),
            &dir.join("out").to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad magic"));
    let _ = std::fs::remove_dir_all(dir);
}
