//! Integration: measurements are reproducible and tracer counts are
//! CPU-independent (only the machine model differs between CPUs).

use zkperf::core::{measure_cell, Curve, Stage};
use zkperf::machine::CpuProfile;

#[test]
fn repeated_measurement_is_deterministic() {
    let cpu = CpuProfile::i7_8650u();
    let a = measure_cell(Curve::Bn128, &cpu, 64, &[Stage::Setup, Stage::Proving]).unwrap();
    let b = measure_cell(Curve::Bn128, &cpu, 64, &[Stage::Setup, Stage::Proving]).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.counts.total_uops(), y.counts.total_uops(), "{}", x.stage);
        assert_eq!(x.counts.branches, y.counts.branches);
        assert_eq!(x.machine.mispredicts, y.machine.mispredicts);
    }
}

#[test]
fn tracer_counts_do_not_depend_on_simulated_cpu() {
    let a = measure_cell(
        Curve::Bn128,
        &CpuProfile::i7_8650u(),
        64,
        &[Stage::Witness],
    )
    .unwrap();
    let b = measure_cell(
        Curve::Bn128,
        &CpuProfile::i9_13900k(),
        64,
        &[Stage::Witness],
    )
    .unwrap();
    assert_eq!(a[0].counts.total_uops(), b[0].counts.total_uops());
    assert_eq!(a[0].counts.loads, b[0].counts.loads);
    // ...while the machine-model results (cache behaviour) may differ.
    assert_eq!(a[0].machine.cpu, "i7-8650U");
    assert_eq!(b[0].machine.cpu, "i9-13900K");
}

#[test]
fn stage_measurements_carry_their_stage_regions() {
    let cpu = CpuProfile::i5_11400();
    let ms = measure_cell(Curve::Bls12_381, &cpu, 32, &Stage::ALL).unwrap();
    let find = |s: Stage| ms.iter().find(|m| m.stage == s).unwrap();
    assert!(find(Stage::Compile).region("parser").is_some());
    assert!(find(Stage::Setup).region("fixed_base_msm").is_some());
    assert!(find(Stage::Witness).region("witness_solver").is_some());
    assert!(find(Stage::Proving).region("msm").is_some());
    assert!(find(Stage::Verifying).region("miller_loop").is_some());
}
