//! Integration: the five protocol stages across crates, on both curves.

use zkperf::circuit::{lang, library};
use zkperf::ec::{Bls12_381, Bn254, Engine};
use zkperf::ff::Field;
use zkperf::groth16::{prove, setup, verify, Proof};

fn pipeline<E: Engine>(constraints: usize) {
    let circuit = library::exponentiate::<E::Fr>(constraints);
    let mut rng = zkperf::ff::test_rng();
    let pk = setup::<E, _>(circuit.r1cs(), &mut rng).unwrap();
    let witness = circuit
        .generate_witness(&[E::Fr::from_u64(7)], &[])
        .unwrap();
    let proof = prove::<E, _>(&pk, circuit.r1cs(), &witness, &mut rng).unwrap();
    assert!(verify::<E>(&pk.vk, &proof, witness.public()).unwrap());
}

#[test]
fn exponentiation_pipeline_bn254() {
    pipeline::<Bn254>(100);
}

#[test]
fn exponentiation_pipeline_bls12_381() {
    pipeline::<Bls12_381>(100);
}

#[test]
fn proofs_do_not_transfer_between_circuits() {
    // A proof for one circuit must not verify under another circuit's key,
    // even with compatible public-witness shapes.
    let mut rng = zkperf::ff::test_rng();
    type Fr = zkperf::ff::bn254::Fr;
    let c1 = library::exponentiate::<Fr>(4); // y = x^4
    let c2 = library::exponentiate::<Fr>(5); // y = x^5
    let pk1 = setup::<Bn254, _>(c1.r1cs(), &mut rng).unwrap();
    let pk2 = setup::<Bn254, _>(c2.r1cs(), &mut rng).unwrap();
    let w1 = c1.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
    let proof1 = prove::<Bn254, _>(&pk1, c1.r1cs(), &w1, &mut rng).unwrap();
    assert!(verify::<Bn254>(&pk1.vk, &proof1, w1.public()).unwrap());
    // Same-shaped statement [1, 16, 2] against circuit 2's key: reject.
    assert!(!verify::<Bn254>(&pk2.vk, &proof1, w1.public()).unwrap());
}

#[test]
fn fresh_setups_are_incompatible() {
    // Two independent ceremonies for the same circuit produce keys that do
    // not accept each other's proofs.
    use rand::SeedableRng;
    type Fr = zkperf::ff::bn254::Fr;
    let circuit = library::exponentiate::<Fr>(8);
    let mut rng_a = rand::rngs::StdRng::seed_from_u64(1);
    let mut rng_b = rand::rngs::StdRng::seed_from_u64(2);
    let pk_a = setup::<Bn254, _>(circuit.r1cs(), &mut rng_a).unwrap();
    let pk_b = setup::<Bn254, _>(circuit.r1cs(), &mut rng_b).unwrap();
    let w = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
    let proof = prove::<Bn254, _>(&pk_a, circuit.r1cs(), &w, &mut rng_a).unwrap();
    assert!(verify::<Bn254>(&pk_a.vk, &proof, w.public()).unwrap());
    assert!(!verify::<Bn254>(&pk_b.vk, &proof, w.public()).unwrap());
}

#[test]
fn language_and_builder_agree() {
    // The same circuit written in the language and built via the DSL
    // produces identical constraint counts and witnesses.
    type Fr = zkperf::ff::bn254::Fr;
    let from_lang = lang::compile::<Fr>(
        "circuit sq { public input x; output y = x * x; }",
    )
    .unwrap();
    let mut b = zkperf::circuit::CircuitBuilder::<Fr>::new("sq");
    let x = b.public_input("x");
    let x2 = b.mul(&x.into(), &x.into());
    b.output("y", x2);
    let from_builder = b.finish();
    assert_eq!(
        from_lang.r1cs().num_constraints(),
        from_builder.r1cs().num_constraints()
    );
    let wl = from_lang.generate_witness(&[Fr::from_u64(9)], &[]).unwrap();
    let wb = from_builder.generate_witness(&[Fr::from_u64(9)], &[]).unwrap();
    assert_eq!(wl.public(), wb.public());
}

#[test]
fn every_library_circuit_proves_and_verifies() {
    type Fr = zkperf::ff::bn254::Fr;
    let mut rng = zkperf::ff::test_rng();
    let f = Fr::from_u64;

    let cases: Vec<(zkperf::circuit::Circuit<Fr>, Vec<Fr>, Vec<Fr>)> = vec![
        (library::exponentiate(6), vec![f(2)], vec![]),
        (library::multiplier_chain(3), vec![], vec![f(3), f(5), f(7)]),
        (library::range_check(10), vec![], vec![f(1000)]),
        (library::merkle_membership(2), vec![], {
            let (inputs, _) = library::merkle_path_inputs(f(5), &[(f(6), false), (f(7), true)]);
            inputs
        }),
    ];
    for (circuit, public, private) in cases {
        let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
        let w = circuit.generate_witness(&public, &private).unwrap();
        let proof: Proof<Bn254> = prove(&pk, circuit.r1cs(), &w, &mut rng).unwrap();
        assert!(
            verify::<Bn254>(&pk.vk, &proof, w.public()).unwrap(),
            "{} failed",
            circuit.name()
        );
    }
}
