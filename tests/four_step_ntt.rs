//! Integration: the cache-blocked four-step NTT is byte-identical to the
//! flat radix-2 transform across the crossover and at any pool size.
//!
//! `Radix2Domain` switches layouts at 2^18: smaller domains run the flat
//! cached-twiddle passes, larger ones the blocked √n×√n decomposition.
//! Both compute the exact same field elements, so callers must never be
//! able to observe the switch — these tests pin forward, inverse, and
//! coset transforms on both sides of the boundary, each at 1-, 2- and
//! 4-thread pools, against the forced flat reference path.

use zkperf::ff::bn254::Fr;
use zkperf::ff::Field;
use zkperf::poly::Radix2Domain;
use zkperf::pool;

/// Deterministic pseudo-random coefficients sized to the domain.
fn coeffs(domain: &Radix2Domain<Fr>) -> Vec<Fr> {
    let mut rng = zkperf::ff::test_rng();
    (0..domain.size()).map(|_| Fr::random(&mut rng)).collect()
}

/// Runs forward + inverse + coset round-trips at a given pool size,
/// returning the three transform outputs for cross-thread comparison.
fn transforms_at(
    domain: &Radix2Domain<Fr>,
    input: &[Fr],
    threads: usize,
) -> (Vec<Fr>, Vec<Fr>, Vec<Fr>) {
    pool::set_threads(threads);
    let mut fwd = input.to_vec();
    domain.fft_in_place(&mut fwd);
    let mut coset = input.to_vec();
    domain.coset_fft_in_place(&mut coset);
    let mut round = fwd.clone();
    domain.ifft_in_place(&mut round);
    assert_eq!(round, input, "ifft(fft(x)) = x at {threads} threads");
    let mut coset_round = coset.clone();
    domain.coset_ifft_in_place(&mut coset_round);
    assert_eq!(
        coset_round, input,
        "coset_ifft(coset_fft(x)) = x at {threads} threads"
    );
    pool::set_threads(1);
    (fwd, coset, round)
}

/// One crossover leg: auto path vs forced flat radix-2 reference, then
/// the same outputs at 2- and 4-thread pools, all compared exactly
/// (canonical Montgomery form makes `Eq` a byte comparison).
fn crossover_leg(log_size: u32) {
    let domain = Radix2Domain::<Fr>::new(1usize << log_size).expect("domain fits the field");
    let input = coeffs(&domain);

    // Reference: the forced flat path on a single thread.
    pool::set_threads(1);
    let mut flat = input.clone();
    domain.fft_in_place_radix2(&mut flat);
    let mut flat_inv = flat.clone();
    domain.ifft_in_place_radix2(&mut flat_inv);
    assert_eq!(flat_inv, input, "flat round-trip, size 2^{log_size}");

    let (fwd1, coset1, _) = transforms_at(&domain, &input, 1);
    assert_eq!(fwd1, flat, "auto path vs flat reference, size 2^{log_size}");
    for threads in [2usize, 4] {
        let (fwd, coset, _) = transforms_at(&domain, &input, threads);
        assert_eq!(fwd, fwd1, "forward at {threads} threads, size 2^{log_size}");
        assert_eq!(coset, coset1, "coset at {threads} threads, size 2^{log_size}");
    }
}

#[test]
fn below_the_crossover_stays_flat_and_thread_invariant() {
    crossover_leg(17);
}

#[test]
fn at_the_crossover_four_step_matches_flat_exactly() {
    crossover_leg(18);
}
