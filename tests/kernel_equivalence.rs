//! Property tests pinning every optimized kernel to its naive reference.
//!
//! The fast-path kernels (signed-digit batch-affine MSM, precomputed-twiddle
//! NTT, dedicated Montgomery squaring, shared-inversion batching) are all
//! algebraically equivalent to straightforward textbook computations; this
//! suite cross-checks them on both curves of the suite so an optimization
//! bug cannot hide behind a benchmark win. Edge cases the windowed machinery
//! is most likely to get wrong — zero scalars, identity points, saturated
//! `-1` scalars, size-1 domains — are exercised explicitly.

use proptest::prelude::*;

use zkperf::ec::{msm, msm_naive, Affine, CurveParams, FixedBaseTable, Projective};
use zkperf::ff::{batch_inverse, BigUint, Field, PrimeField};
use zkperf::poly::Radix2Domain;

fn arb_field<F: PrimeField>() -> impl Strategy<Value = F> {
    proptest::collection::vec(any::<u64>(), 2 * F::NUM_LIMBS)
        .prop_map(|limbs| F::from_biguint(&BigUint::from_limbs(&limbs)))
}

/// Random affine points with identities sprinkled in (index divisible by 5).
fn arb_points<C: CurveParams>(len: usize) -> impl Strategy<Value = Vec<Affine<C>>> {
    proptest::collection::vec(arb_field::<C::Scalar>(), len).prop_map(|scalars| {
        scalars
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i % 5 == 4 {
                    Affine::identity()
                } else {
                    (Projective::<C>::generator() * *s).to_affine()
                }
            })
            .collect()
    })
}

/// Scalar vectors mixing random values with the adversarial ones: zero
/// (skipped buckets), one, and `-1` (every signed window carries).
fn arb_scalars<F: PrimeField>(len: usize) -> impl Strategy<Value = Vec<F>> {
    proptest::collection::vec((arb_field::<F>(), 0u8..4), len).prop_map(|picks| {
        picks
            .into_iter()
            .map(|(s, tag)| match tag {
                0 => F::zero(),
                1 => -F::one(),
                _ => s,
            })
            .collect()
    })
}

/// Naive O(n²) polynomial evaluation over the domain: the NTT reference.
fn naive_domain_eval<F: PrimeField>(domain: &Radix2Domain<F>, coeffs: &[F]) -> Vec<F> {
    (0..domain.size())
        .map(|i| {
            let x = domain.element(i);
            coeffs
                .iter()
                .rev()
                .fold(F::zero(), |acc, c| acc * x + *c)
        })
        .collect()
}

macro_rules! kernel_equivalence_for_curve {
    ($mod_name:ident, $g1:path, $fr:path) => {
        mod $mod_name {
            use super::*;

            type G1 = $g1;
            type Fr = $fr;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(16))]

                #[test]
                fn msm_matches_naive(
                    bases in arb_points::<G1>(65),
                    scalars in arb_scalars::<Fr>(65),
                ) {
                    prop_assert_eq!(
                        msm(&bases, &scalars),
                        msm_naive(&bases, &scalars)
                    );
                }

                #[test]
                fn fixed_base_batch_matches_naive(
                    base in arb_field::<Fr>(),
                    scalars in arb_scalars::<Fr>(33),
                    window in 1usize..=13,
                ) {
                    let base = Projective::<G1>::generator() * base;
                    let table = FixedBaseTable::with_window_bits(&base, window);
                    let batch = table.mul_batch(&scalars);
                    for (s, got) in scalars.iter().zip(&batch) {
                        prop_assert_eq!(got.to_projective(), base * *s);
                        prop_assert_eq!(table.mul(s), base * *s);
                    }
                }

                #[test]
                fn ntt_matches_naive_evaluation(
                    coeffs in proptest::collection::vec(arb_field::<Fr>(), 1..32),
                ) {
                    let domain = Radix2Domain::<Fr>::new(coeffs.len().max(2)).unwrap();
                    let mut values = coeffs.clone();
                    values.resize(domain.size(), Fr::zero());
                    domain.fft_in_place(&mut values);
                    prop_assert_eq!(values.clone(), naive_domain_eval(&domain, &coeffs));
                    domain.ifft_in_place(&mut values);
                    let mut padded = coeffs.clone();
                    padded.resize(domain.size(), Fr::zero());
                    prop_assert_eq!(values, padded);
                }

                #[test]
                fn square_matches_mul(a in arb_field::<Fr>()) {
                    prop_assert_eq!(a.square(), a * a);
                    prop_assert_eq!(a.square().square(), (a * a) * (a * a));
                }

                #[test]
                fn batch_inverse_matches_individual(
                    mut values in proptest::collection::vec(arb_field::<Fr>(), 0..24),
                ) {
                    // Plant zeros: batch inversion must skip them in place.
                    if values.len() > 2 {
                        let mid = values.len() / 2;
                        values[mid] = Fr::zero();
                    }
                    let expect: Vec<Fr> = values
                        .iter()
                        .map(|v| v.inverse().unwrap_or_else(Fr::zero))
                        .collect();
                    batch_inverse(&mut values);
                    prop_assert_eq!(values, expect);
                }
            }

            #[test]
            fn msm_all_zero_scalars_and_identity_bases() {
                let bases = vec![Affine::<G1>::identity(); 40];
                let scalars = vec![Fr::zero(); 40];
                assert!(msm(&bases, &scalars).is_identity());
                let bases = vec![Projective::<G1>::generator().to_affine(); 40];
                assert!(msm(&bases, &scalars).is_identity());
            }

            #[test]
            fn size_one_and_two_domains_roundtrip() {
                // The smallest constructible domain exercises the stride-0
                // twiddle edge of the cached NTT path.
                let domain = Radix2Domain::<Fr>::new(1).unwrap();
                let mut values: Vec<Fr> =
                    (0..domain.size()).map(|i| Fr::from_u64(i as u64 + 3)).collect();
                let coeffs = values.clone();
                domain.fft_in_place(&mut values);
                assert_eq!(values, naive_domain_eval(&domain, &coeffs));
                domain.ifft_in_place(&mut values);
                assert_eq!(values, coeffs);
                assert_eq!(domain.element(0), Fr::one());
            }
        }
    };
}

kernel_equivalence_for_curve!(bn254, zkperf::ec::bn254::G1Params, zkperf::ff::bn254::Fr);
kernel_equivalence_for_curve!(
    bls12_381,
    zkperf::ec::bls12_381::G1Params,
    zkperf::ff::bls12_381::Fr
);
