//! Integration: the PLONK scheme against the same circuits and witnesses
//! as Groth16, plus cross-scheme consistency.

use zkperf::circuit::library::{exponentiate, multiplier_chain};
use zkperf::ec::{Bls12_381, Bn254};
use zkperf::ff::Field;
use zkperf::groth16;
use zkperf::plonk::{plonk_prove, plonk_setup, plonk_verify};

#[test]
fn both_schemes_accept_the_same_statement() {
    type Fr = zkperf::ff::bn254::Fr;
    let circuit = exponentiate::<Fr>(12);
    let mut rng = zkperf::ff::test_rng();
    let witness = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();

    let g_pk = groth16::setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
    let g_proof =
        groth16::prove::<Bn254, _>(&g_pk, circuit.r1cs(), &witness, &mut rng).unwrap();
    assert!(groth16::verify::<Bn254>(&g_pk.vk, &g_proof, witness.public()).unwrap());

    let p_pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
    let p_proof = plonk_prove(&p_pk, witness.full()).unwrap();
    assert!(plonk_verify(p_pk.vk(), &p_proof, witness.public()));

    // And both reject the same wrong statement.
    let mut wrong = witness.public().to_vec();
    wrong[1] += Fr::one();
    assert!(!groth16::verify::<Bn254>(&g_pk.vk, &g_proof, &wrong).unwrap());
    assert!(!plonk_verify(p_pk.vk(), &p_proof, &wrong));
}

#[test]
fn plonk_works_on_bls12_381() {
    type Fr = zkperf::ff::bls12_381::Fr;
    let circuit = multiplier_chain::<Fr>(4);
    let mut rng = zkperf::ff::test_rng();
    let f = Fr::from_u64;
    let witness = circuit
        .generate_witness(&[], &[f(2), f(3), f(5), f(7)])
        .unwrap();
    let pk = plonk_setup::<Bls12_381, _>(circuit.r1cs(), &mut rng).unwrap();
    let proof = plonk_prove(&pk, witness.full()).unwrap();
    assert!(plonk_verify(pk.vk(), &proof, &[f(1), f(210)]));
    assert!(!plonk_verify(pk.vk(), &proof, &[f(1), f(211)]));
}

#[test]
fn plonk_proofs_do_not_transfer_between_statements() {
    type Fr = zkperf::ff::bn254::Fr;
    let circuit = exponentiate::<Fr>(4);
    let mut rng = zkperf::ff::test_rng();
    let pk = plonk_setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
    let w2 = circuit.generate_witness(&[Fr::from_u64(2)], &[]).unwrap();
    let w3 = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
    let proof2 = plonk_prove(&pk, w2.full()).unwrap();
    assert!(plonk_verify(pk.vk(), &proof2, w2.public()));
    assert!(!plonk_verify(pk.vk(), &proof2, w3.public()));
}
