//! Cross-crate property-based tests (proptest) on the suite's core
//! invariants.

use proptest::prelude::*;

use zkperf::circuit::{lang, CircuitBuilder, LinearCombination};
use zkperf::ff::{bn254, BigUint, Field, PrimeField};
use zkperf::poly::{DensePolynomial, Radix2Domain};

type Fr = bn254::Fr;

fn arb_fr() -> impl Strategy<Value = Fr> {
    proptest::collection::vec(any::<u64>(), 4)
        .prop_map(|limbs| Fr::from_biguint(&BigUint::from_limbs(&limbs)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------ fields --

    #[test]
    fn field_ring_axioms(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Fr::zero());
        prop_assert_eq!(a * Fr::one(), a);
    }

    #[test]
    fn field_matches_biguint_reference(a in arb_fr(), b in arb_fr()) {
        let m = Fr::modulus();
        let sum = (&a.to_biguint() + &b.to_biguint()).rem(&m);
        prop_assert_eq!((a + b).to_biguint(), sum);
        let prod = (&a.to_biguint() * &b.to_biguint()).rem(&m);
        prop_assert_eq!((a * b).to_biguint(), prod);
    }

    #[test]
    fn inverse_is_two_sided(a in arb_fr()) {
        if let Some(inv) = a.inverse() {
            prop_assert!((a * inv).is_one());
            prop_assert!((inv * a).is_one());
            prop_assert_eq!(inv.inverse().unwrap(), a);
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn pow_is_homomorphic(a in arb_fr(), e1 in 0u64..1000, e2 in 0u64..1000) {
        let p1 = a.pow(&BigUint::from_u64(e1));
        let p2 = a.pow(&BigUint::from_u64(e2));
        let psum = a.pow(&BigUint::from_u64(e1 + e2));
        prop_assert_eq!(p1 * p2, psum);
    }

    // ----------------------------------------------------------- bigints --

    #[test]
    fn bigint_divrem_reconstructs(
        a in proptest::collection::vec(any::<u64>(), 1..6),
        b in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        let a = BigUint::from_limbs(&a);
        let b = BigUint::from_limbs(&b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn bigint_string_roundtrip(limbs in proptest::collection::vec(any::<u64>(), 0..5)) {
        let a = BigUint::from_limbs(&limbs);
        let dec = BigUint::from_str_radix(&a.to_string(), 10).unwrap();
        prop_assert_eq!(&dec, &a);
        let hex = BigUint::from_str_radix(&format!("{a:x}"), 16).unwrap();
        prop_assert_eq!(&hex, &a);
    }

    // --------------------------------------------------------------- fft --

    #[test]
    fn fft_roundtrip(log in 0u32..9, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let domain = Radix2Domain::<Fr>::new(1 << log).unwrap();
        let coeffs: Vec<Fr> = (0..domain.size())
            .map(|_| Fr::from_u64(rng.gen()))
            .collect();
        let mut buf = coeffs.clone();
        domain.fft_in_place(&mut buf);
        domain.ifft_in_place(&mut buf);
        prop_assert_eq!(buf, coeffs);
    }

    #[test]
    fn fft_is_linear(log in 2u32..7, s in 1u64..1000) {
        let domain = Radix2Domain::<Fr>::new(1 << log).unwrap();
        let n = domain.size();
        let a: Vec<Fr> = (0..n).map(|i| Fr::from_u64(i as u64 + 1)).collect();
        let s = Fr::from_u64(s);
        let mut scaled: Vec<Fr> = a.iter().map(|&x| x * s).collect();
        let mut plain = a.clone();
        domain.fft_in_place(&mut plain);
        domain.fft_in_place(&mut scaled);
        for (p, q) in plain.iter().zip(&scaled) {
            prop_assert_eq!(*p * s, *q);
        }
    }

    #[test]
    fn polynomial_mul_degree_and_eval(
        a in proptest::collection::vec(1u64..100, 1..8),
        b in proptest::collection::vec(1u64..100, 1..8),
        x in 1u64..50,
    ) {
        let pa = DensePolynomial::new(a.iter().map(|&c| Fr::from_u64(c)).collect());
        let pb = DensePolynomial::new(b.iter().map(|&c| Fr::from_u64(c)).collect());
        let prod = pa.mul(&pb);
        let x = Fr::from_u64(x);
        prop_assert_eq!(prod.evaluate(x), pa.evaluate(x) * pb.evaluate(x));
        prop_assert_eq!(prod.degree(), pa.degree() + pb.degree());
    }

    // ------------------------------------------------------------ circuit --

    #[test]
    fn witness_always_satisfies_r1cs(
        muls in 1usize..20,
        x in 1u64..1_000_000,
    ) {
        let mut b = CircuitBuilder::<Fr>::new("prop");
        let input = b.public_input("x");
        let mut acc: LinearCombination<Fr> = input.into();
        for _ in 0..muls {
            let base: LinearCombination<Fr> = input.into();
            acc = b.mul(&acc, &base);
        }
        b.output("y", acc);
        let circuit = b.finish();
        let w = circuit.generate_witness(&[Fr::from_u64(x)], &[]).unwrap();
        prop_assert_eq!(circuit.r1cs().check_satisfied(w.full()), Ok(()));
        // The output really is x^(muls+1).
        let expect = Fr::from_u64(x).pow(&BigUint::from_u64(muls as u64 + 1));
        prop_assert_eq!(w.public()[1], expect);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in "\\PC*") {
        // Errors are fine; panics are not.
        let _ = lang::parse(&src);
    }

    #[test]
    fn parser_never_panics_on_tokeny_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("circuit".to_string()),
                Just("repeat".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("*".to_string()),
                Just("x".to_string()),
                Just("3".to_string()),
                Just("let".to_string()),
            ],
            0..30,
        )
    ) {
        let src = words.join(" ");
        let _ = lang::compile::<Fr>(&src);
    }

    #[test]
    fn decompose_bits_matches_value(v in 0u64..(1 << 16)) {
        let mut b = CircuitBuilder::<Fr>::new("bits");
        let x = b.public_input("x");
        let bits = b.decompose_bits(&x.into(), 16);
        prop_assert_eq!(bits.len(), 16);
        let circuit = b.finish();
        let w = circuit.generate_witness(&[Fr::from_u64(v)], &[]).unwrap();
        // Recompose from the aux region.
        let aux = &w.full()[2..18];
        let mut recomposed = 0u64;
        for (i, bit) in aux.iter().enumerate() {
            if bit.is_one() {
                recomposed |= 1 << i;
            }
        }
        prop_assert_eq!(recomposed, v);
    }
}
