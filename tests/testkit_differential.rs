//! Integration: the differential-oracle inventory runs green at a fixed
//! seed, and the campaign layer addresses cases reproducibly.
//!
//! This is the in-tree mirror of the `fuzz_lite` smoke tier: a few cases
//! of every oracle (including the thread-toggling ones, which is why the
//! suite serializes itself around the workspace pool lock via a single
//! `#[test]` per group).

use zkperf_testkit::campaign::{run_campaign, CampaignConfig};
use zkperf_testkit::{all_oracles, case_rng};

#[test]
fn every_oracle_passes_a_fixed_seed_sweep() {
    let config = CampaignConfig {
        seed: 0x7e57_0001,
        iters: 2,
        filter: None,
        case: None,
        skip_soundness: true, // covered by tests/testkit_soundness.rs
    };
    let report = run_campaign(&config, |_, _| {});
    assert_eq!(report.oracles_run, all_oracles().len());
    assert_eq!(report.cases_run, 2 * all_oracles().len() as u64);
    assert!(
        report.passed(),
        "diverging cases:\n{}",
        report
            .failures
            .iter()
            .map(|f| format!("  {} case {}: {}\n  replay: {}", f.oracle, f.case, f.detail, f.replay_command()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn case_addressing_is_reproducible_and_independent() {
    use rand::Rng;
    // Same (seed, oracle, case) → same stream; any coordinate change →
    // a different stream. This is the property the replay workflow rests on.
    let mut a = case_rng(7, "msm_bn254_g1", 3);
    let mut b = case_rng(7, "msm_bn254_g1", 3);
    let draws_a: Vec<u64> = (0..8).map(|_| a.gen()).collect();
    let draws_b: Vec<u64> = (0..8).map(|_| b.gen()).collect();
    assert_eq!(draws_a, draws_b);
    let mut c = case_rng(7, "msm_bn254_g1", 4);
    let mut d = case_rng(8, "msm_bn254_g1", 3);
    let mut e = case_rng(7, "ntt_bn254_fr", 3);
    assert_ne!(draws_a, (0..8).map(|_| c.gen()).collect::<Vec<u64>>());
    assert_ne!(draws_a, (0..8).map(|_| d.gen()).collect::<Vec<u64>>());
    assert_ne!(draws_a, (0..8).map(|_| e.gen()).collect::<Vec<u64>>());
}

#[test]
fn inventory_covers_every_optimized_kernel_family() {
    // The acceptance bar for the testkit: each kernel family that got an
    // optimized implementation has at least one differential oracle.
    let names: Vec<&str> = all_oracles().iter().map(|o| o.name).collect();
    for family in [
        "field_ops",      // Montgomery mul/sqr/add/sub vs BigUint
        "field_inverse",  // Fermat + batch inverse
        "msm_",           // batch-affine signed-window MSM
        "fixed_base",     // fixed-base window tables
        "ntt_",           // cached-twiddle NTT, forward/inverse/coset
        "lagrange",       // barycentric Lagrange kernel
        "threads_",       // N-thread vs 1-thread determinism
        "groth16_roundtrip",
        "plonk_roundtrip",
        "stark_goldilocks",      // Goldilocks arithmetic vs BigUint
        "stark_merkle",          // Poseidon Merkle vs recursive reference
        "stark_fri_fold",        // FRI fold vs even/odd Horner evaluation
        "stark_roundtrip",       // transparent pipeline + proof codec
        "stark_threads",         // STARK kernels across pool sizes
    ] {
        assert!(
            names.iter().any(|n| n.contains(family)),
            "no oracle covers kernel family {family:?} (inventory: {names:?})"
        );
    }
}
