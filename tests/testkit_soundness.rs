//! Integration: the soundness-negative audit — every mutation class over
//! valid Groth16, PLONK, and STARK proofs must be rejected by
//! verification, the STARK classes in the typed `StarkError` variant
//! that owns each corruption.

use zkperf_testkit::soundness::{distinct_classes, run_all_mutations, run_stark_mutations};
use zkperf_testkit::SplitRng;

#[test]
fn all_mutation_classes_are_rejected_and_coverage_is_wide() {
    let mut rng = SplitRng::from_seed(0x7e57_0002);
    let outcomes = run_all_mutations(&mut rng).expect("fixtures build and verify");

    // Acceptance bar: at least 37 distinct mutation classes across the
    // three proof systems (25 from the pairing schemes, 12+ from the
    // STARK battery), with every scheme represented.
    assert!(
        distinct_classes(&outcomes) >= 37,
        "only {} distinct mutation classes",
        distinct_classes(&outcomes)
    );
    for scheme in ["groth16", "plonk", "stark"] {
        assert!(
            outcomes.iter().any(|o| o.scheme == scheme),
            "no mutation classes ran for {scheme}"
        );
    }

    let accepted: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.rejected)
        .map(|o| format!("{}/{} ({})", o.scheme, o.name, o.outcome))
        .collect();
    assert!(
        accepted.is_empty(),
        "soundness holes — mutated inputs accepted: {accepted:?}"
    );
}

#[test]
fn stark_battery_meets_the_class_floor() {
    let mut rng = SplitRng::from_seed(0x7e57_0003);
    let outcomes = run_stark_mutations(&mut rng).expect("fixture builds and verifies");
    let distinct = distinct_classes(&outcomes);
    assert!(distinct >= 12, "only {distinct} distinct STARK mutation classes");
    for o in &outcomes {
        assert!(
            o.rejected,
            "stark/{} not rejected in its typed variant: {}",
            o.name, o.outcome
        );
    }
}

#[test]
fn mutation_suite_is_deterministic_per_seed() {
    // The audit is part of the fixed-seed smoke tier, so its verdicts must
    // be a pure function of the seed.
    let run = |seed: u64| {
        let mut rng = SplitRng::from_seed(seed);
        run_all_mutations(&mut rng)
            .unwrap()
            .into_iter()
            .map(|o| (o.scheme, o.name, o.rejected))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
}
