//! Integration: the soundness-negative audit — every mutation class over
//! valid Groth16 and PLONK proofs must be rejected by verification.

use zkperf_testkit::soundness::{distinct_classes, run_all_mutations};
use zkperf_testkit::SplitRng;

#[test]
fn all_mutation_classes_are_rejected_and_coverage_is_wide() {
    let mut rng = SplitRng::from_seed(0x7e57_0002);
    let outcomes = run_all_mutations(&mut rng).expect("fixtures build and verify");

    // Acceptance bar: at least 25 distinct mutation classes across the two
    // proof systems, with both schemes represented.
    assert!(
        distinct_classes(&outcomes) >= 25,
        "only {} distinct mutation classes",
        distinct_classes(&outcomes)
    );
    assert!(outcomes.iter().any(|o| o.scheme == "groth16"));
    assert!(outcomes.iter().any(|o| o.scheme == "plonk"));

    let accepted: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.rejected)
        .map(|o| format!("{}/{} ({})", o.scheme, o.name, o.outcome))
        .collect();
    assert!(
        accepted.is_empty(),
        "soundness holes — mutated inputs accepted: {accepted:?}"
    );
}

#[test]
fn mutation_suite_is_deterministic_per_seed() {
    // The audit is part of the fixed-seed smoke tier, so its verdicts must
    // be a pure function of the seed.
    let run = |seed: u64| {
        let mut rng = SplitRng::from_seed(seed);
        run_all_mutations(&mut rng)
            .unwrap()
            .into_iter()
            .map(|o| (o.scheme, o.name, o.rejected))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
}
