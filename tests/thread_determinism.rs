//! Integration: proofs are byte-identical at any thread-pool size.
//!
//! The pool decomposes work purely by input size and reduces in a fixed
//! order, so setup, witness evaluation, NTT, MSM, Merkle hashing, and
//! FRI folding must produce the same bits whether they ran serially or
//! on N workers. This is the workspace-level seal on that rule: a full
//! setup→prove→serialize round at a size that clears every parallel
//! threshold, compared byte for byte across pool sizes — once for the
//! randomness-carrying Groth16 pipeline (under a pinned RNG) and once
//! for the randomness-free STARK pipeline.
//!
//! A single `#[test]` drives both pipelines because the pool size is
//! process-global state.

use zkperf::circuit::library;
use zkperf::ec::Bn254;
use zkperf::ff::{Field, Goldilocks};
use zkperf::groth16::{prove, setup, verify};
use zkperf::io::write_proof;
use zkperf::pool;
use zkperf::stark::StarkParams;

/// 2^12 constraints clears every parallel gate in the pairing pipeline
/// (MSM ≥ 2^10 points, NTT ≥ 2^12 domain, setup/quotient ≥ 2^12 scalars,
/// constraint evaluation ≥ 2^10 rows).
const CONSTRAINTS: usize = 1 << 12;

/// 2^10 constraints at blowup 8 puts the STARK LDE at 2^13, past the
/// NTT parallel gate as well as the Merkle (64) and FRI fold (256)
/// grains.
const STARK_CONSTRAINTS: usize = 1 << 10;

fn groth16_proof_bytes() -> Vec<u8> {
    type Fr = zkperf::ff::bn254::Fr;
    let circuit = library::exponentiate::<Fr>(CONSTRAINTS);
    let mut rng = zkperf::ff::test_rng();
    let pk = setup::<Bn254, _>(circuit.r1cs(), &mut rng).unwrap();
    let witness = circuit.generate_witness(&[Fr::from_u64(3)], &[]).unwrap();
    let proof = prove::<Bn254, _>(&pk, circuit.r1cs(), &witness, &mut rng).unwrap();
    assert!(verify::<Bn254>(&pk.vk, &proof, witness.public()).unwrap());
    let mut bytes = Vec::new();
    write_proof::<Bn254>(&mut bytes, &proof).unwrap();
    bytes
}

fn stark_proof_bytes() -> Vec<u8> {
    type F = Goldilocks;
    let circuit = library::exponentiate::<F>(STARK_CONSTRAINTS);
    let witness = circuit.generate_witness(&[F::from_u64(3)], &[]).unwrap();
    let params = StarkParams {
        blowup: 8,
        num_queries: 16,
    };
    let proof = zkperf::stark::prove(circuit.r1cs(), witness.full(), &params).unwrap();
    zkperf::stark::verify(circuit.r1cs(), witness.public(), &proof, &params).unwrap();
    proof.encode()
}

#[test]
fn proofs_are_byte_identical_across_thread_counts() {
    // First round at the ambient pool size (ZKPERF_THREADS when
    // scripts/check.sh drives this binary), then explicit 1/2/4-thread
    // pools; every round must serialize to the same bytes.
    let groth16_baseline = groth16_proof_bytes();
    let stark_baseline = stark_proof_bytes();
    for threads in [1usize, 2, 4] {
        pool::set_threads(threads);
        assert_eq!(
            groth16_baseline,
            groth16_proof_bytes(),
            "Groth16 proof bytes differ at {threads} thread(s)"
        );
        assert_eq!(
            stark_baseline,
            stark_proof_bytes(),
            "STARK proof bytes differ at {threads} thread(s)"
        );
    }
    pool::set_threads(1);
}
