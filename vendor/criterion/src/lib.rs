//! Offline vendored stand-in for the subset of `criterion` this
//! workspace's benches use. Instead of statistical sampling it runs each
//! benchmark body a handful of times and prints a single median-ish
//! timing, so `cargo bench` still smoke-tests every kernel end to end.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark body — enough to amortize clock reads, small
/// enough that the full suite stays in smoke-test territory.
const RUNS: u32 = 3;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke harness ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), &mut f);
        self
    }

    /// Runs one parameterized benchmark inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op in the smoke harness).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `name/parameter`.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Timer handle passed to each benchmark body.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over a fixed small number of runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..RUNS {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() / u128::from(RUNS);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    println!("  {label}: {} ns/iter", b.elapsed_ns);
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `fn main` running the listed groups (benches set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(3) * 3));
    }

    #[test]
    fn harness_runs_bodies() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
