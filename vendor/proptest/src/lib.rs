//! Offline vendored stand-in for the subset of `proptest` this workspace
//! uses: the `proptest!` macro, range/`any`/`collection::vec`/`prop_map`/
//! `prop_oneof!` strategies, and `ProptestConfig::with_cases`.
//!
//! Sampling is deterministic (seeded from the test name) and there is no
//! shrinking: a failing case panics with the normal assert message, which
//! is enough signal for this repo's CI gate.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (splitmix64 seeded from the test name).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `tag`.
    pub fn deterministic(tag: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in tag.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Test-case generation strategy: a seeded sampler for `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Constant strategy that always yields its value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u128).saturating_sub(self.start as u128);
                assert!(span > 0, "cannot sample from empty range");
                (self.start as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                (*self.start() as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// String-pattern strategies (`src in "\\PC*"`). The real crate
/// interprets the pattern as a regex; this stub ignores it and draws a
/// short string mixing printable ASCII, control bytes, and multi-byte
/// chars — broad enough for never-panics fuzzing.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = (rng.next_u64() % 48) as usize;
        (0..len)
            .map(|_| match rng.next_u64() % 8 {
                0 => char::from(rng.next_u64() as u8), // any byte-range char
                1 => '\u{1F600}',
                2 => 'λ',
                _ => char::from(0x20 + (rng.next_u64() % 95) as u8),
            })
            .collect()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; proptest's NaN/Inf corner cases are not
        // exercised by this workspace.
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between boxed alternative strategies (see
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty (a static misuse).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`].
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-block test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Asserts a property-test condition (plain `assert!` here: failures
/// panic with the case values baked into the message by the caller).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..100 {
            let s = 3u64..17;
            let (va, vb) = (s.sample(&mut a), s.sample(&mut b));
            assert_eq!(va, vb);
            assert!((3..17).contains(&va));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(
            x in 1u64..100,
            v in crate::collection::vec(any::<u8>(), 0..5),
            pair in (0u32..4, any::<bool>()),
            mixed in prop_oneof![
                (0u32..10).prop_map(|u| (0u8, u as usize)),
                any::<bool>().prop_map(|b| (1u8, b as usize)),
            ],
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 5);
            prop_assert!(pair.0 < 4);
            prop_assert!(mixed.0 <= 1);
        }
    }
}
