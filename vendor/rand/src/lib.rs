//! Offline vendored stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: [`Rng`], [`RngCore`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`thread_rng`].
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched; this stub keeps the same call sites working.
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — fully
//! deterministic for a given seed, which is exactly what the measurement
//! suite relies on for reproducible sweeps.

/// Low-level generator interface: raw 32/64-bit output and byte fill.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&bytes[..n]);
        }
    }
}

/// Sampling of a value of type `T` from uniform random bits (the stand-in
/// for rand's `Standard` distribution).
pub trait Sample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Sample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Sample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of an inferred type.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.next_u64() % span
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Sample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's
    /// `StdRng`; the algorithm differs from upstream but determinism per
    /// seed — the property the suite depends on — holds).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh, non-reproducible generator (seeded from the wall clock and a
/// process-wide counter; entropy quality is far below the real
/// `thread_rng` but sufficient for benchmarks and demos).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(nanos ^ unique.rotate_left(32) ^ std::process::id() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x != c.next_u64()));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_infers_types() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
