//! Offline vendored stand-in for the subset of `serde` this workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs and enums,
//! the [`Serialize`]/[`Deserialize`] traits as bounds, and
//! `serde::de::DeserializeOwned`.
//!
//! Instead of serde's visitor architecture, everything funnels through a
//! self-describing [`Value`] tree (the JSON data model). `serde_json` in
//! `vendor/serde_json` renders and parses that tree. The derive macros in
//! `vendor/serde_derive` generate `to_value`/`from_value` impls.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing data model every serializable type maps into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string contents, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == name))
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Builds a type-mismatch error.
    pub fn expected(what: &str) -> Self {
        Error {
            message: format!("expected {what}"),
        }
    }

    /// Builds a missing-field error.
    pub fn missing_field(name: &str) -> Self {
        Error {
            message: format!("missing field `{name}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module the workspace imports `DeserializeOwned` from.
pub mod de {
    /// Marker for types deserializable without borrowing from the input
    /// (all of them, in this stub).
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Reads one struct field out of an object's entries (used by generated
/// `Deserialize` impls).
///
/// # Errors
///
/// [`Error`] when the field is absent or has the wrong shape.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::missing_field(name)),
    }
}

// ---------------------------------------------------------------- impls --

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    _ => return Err(Error::expected("unsigned integer")),
                };
                <$t>::try_from(raw).map_err(|_| Error::expected("in-range integer"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i64;
                if wide >= 0 { Value::UInt(wide as u64) } else { Value::Int(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::expected("in-range integer"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(Error::expected("integer")),
                };
                <$t>::try_from(raw).map_err(|_| Error::expected("in-range integer"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::expected("number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::expected("two-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::expected("three-element array")),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_object().ok_or_else(|| Error::expected("duration object"))?;
        let secs: u64 = field(entries, "secs")?;
        let nanos: u32 = field(entries, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_object().ok_or_else(|| Error::expected("object"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
