//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the serde stub in `vendor/serde`.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! registry is unreachable in this build environment). Supports exactly
//! the shapes this workspace derives on: non-generic structs with named
//! fields, enums with unit/tuple/named variants, and no `#[serde(...)]`
//! attributes. Anything else produces a `compile_error!` so unsupported
//! shapes fail loudly instead of silently misencoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    Struct { fields: Vec<String> },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .unwrap_or_else(|_| TokenStream::new())
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => return compile_error(&msg),
    };
    let body = match (&shape, mode) {
        (Shape::Struct { fields }, Mode::Serialize) => struct_serialize(&name, fields),
        (Shape::Struct { fields }, Mode::Deserialize) => struct_deserialize(&name, fields),
        (Shape::Enum { variants }, Mode::Serialize) => enum_serialize(&name, variants),
        (Shape::Enum { variants }, Mode::Deserialize) => enum_deserialize(&name, variants),
    };
    match body.parse() {
        Ok(ts) => ts,
        Err(_) => compile_error("serde stub derive generated unparsable code"),
    }
}

/// Skips any `#[...]` attribute groups at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` at the cursor.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skips a type (or any token run) until a top-level comma, tracking
/// `<`/`>` nesting so `Vec<(A, B)>`-style types survive.
fn skip_until_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth: i64 = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_visibility(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected a type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive: generic type `{name}` is not supported"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde stub derive: `{name}` must have a braced body (tuple \
                 structs and unit structs are not supported)"
            ))
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct {
            fields: parse_named_fields(body)?,
        },
        "enum" => Shape::Enum {
            variants: parse_variants(body)?,
        },
        other => return Err(format!("serde stub derive: unsupported item `{other}`")),
    };
    Ok((name, shape))
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_visibility(&tokens, i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde stub derive: expected a field name".into()),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde stub derive: expected `:` after `{field}`")),
        }
        i = skip_until_comma(&tokens, i);
        i += 1; // past the comma (or the end)
        fields.push(field);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde stub derive: expected a variant name".into()),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                return Err("serde stub derive: explicit discriminants unsupported".into());
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_until_comma(&tokens, i);
        i += 1;
        count += 1;
    }
    count
}

// ------------------------------------------------------------- codegen --

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::field(__entries, {f:?})?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __entries = __v.as_object()\
                     .ok_or_else(|| ::serde::Error::expected(\"object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from({vname:?})),"
                ),
                VariantKind::Tuple(1) => format!(
                    "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({vname:?}), \
                         ::serde::Serialize::to_value(__f0))]),"
                ),
                VariantKind::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let items: String = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b}),"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Array(::std::vec![{items}]))]),",
                        binds.join(", ")
                    )
                }
                VariantKind::Named(fields) => {
                    let binds = fields.join(", ");
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f})),"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Object(::std::vec![{entries}]))]),"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vname = &v.name;
            format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let elems: String = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                        .collect();
                    Some(format!(
                        "{vname:?} => match __inner {{\n\
                             ::serde::Value::Array(__items) if __items.len() == {n} =>\n\
                                 ::std::result::Result::Ok({name}::{vname}({elems})),\n\
                             _ => ::std::result::Result::Err(\
                                 ::serde::Error::expected(\"{n}-element array\")),\n\
                         }},"
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(__ve, {f:?})?,"))
                        .collect();
                    Some(format!(
                        "{vname:?} => {{\n\
                             let __ve = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::expected(\"object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                         }},"
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     return match __s {{\n\
                         {unit_arms}\n\
                         _ => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown {name} variant `{{__s}}`\"))),\n\
                     }};\n\
                 }}\n\
                 if let ::std::option::Option::Some(__entries) = __v.as_object() {{\n\
                     if __entries.len() == 1 {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         return match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown {name} variant `{{__tag}}`\"))),\n\
                         }};\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::expected(\"{name} variant\"))\n\
             }}\n\
         }}"
    )
}
