//! Offline vendored JSON serializer/deserializer over the serde stub's
//! [`serde::Value`] data model.
//!
//! The parser is written defensively — depth-limited recursion, no
//! panics on malformed input — because the zkperf fault-injection suite
//! feeds it deliberately corrupted bytes.

use serde::{de::DeserializeOwned, Serialize, Value};
use std::fmt;

/// Parse or shape error, mirroring `serde_json::Error`'s public face.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON bytes.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors the real API.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out.into_bytes())
}

/// Serializes `value` as human-indented JSON bytes.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors the real API.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out.push('\n');
    Ok(out.into_bytes())
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------- writing --

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Value::Int(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trippable float form.
                let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------- parsing --

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// [`Error`] on malformed input, excessive nesting, or trailing bytes.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing bytes at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                expected as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("bad literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!("unexpected byte at offset {}", self.pos))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in our data; map
                            // lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated utf-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number at offset {start}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(7)),
            ("b".into(), Value::Float(1.5)),
            ("c".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("d".into(), Value::String("x\n\"y\"".into())),
            ("e".into(), Value::Int(-3)),
        ]);
        let compact = to_string(&v).unwrap();
        let back = parse(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = String::from_utf8(to_vec_pretty(&v).unwrap()).unwrap();
        assert_eq!(parse(pretty.trim()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "[", "\"", "{\"a\"", "{\"a\":}", "[1,", "nul", "1e",
            "{\"a\":1,}", "\u{0}", "[\"\\u12\"]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_preserve_integerness() {
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("42.0").unwrap(), Value::Float(42.0));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        // u64::MAX survives.
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
    }
}
